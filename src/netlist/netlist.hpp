// Gate-level netlist graph.
//
// The netlist is a DAG of single-output gates (section 3 item 1 of
// DESIGN.md). Sequential elements are kDff gates whose clock is named by a
// clock-domain attribute; everything between DFF boundaries must be
// combinational and acyclic. DFT transforms (scan insertion, X-bounding,
// test points) mutate a netlist in place through the editing API.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "netlist/cell.hpp"
#include "netlist/ids.hpp"

namespace lbist {

/// A named functional clock domain. Periods are exact integers in
/// picoseconds so at-speed pulse spacing can be checked without rounding.
struct ClockDomain {
  std::string name;
  uint64_t period_ps = 0;

  [[nodiscard]] double freq_mhz() const {
    return period_ps == 0 ? 0.0 : 1e6 / static_cast<double>(period_ps);
  }
};

/// Per-gate flag bits.
enum GateFlag : uint8_t {
  kFlagNoScan = 1u << 0,        // DFF that must not be made scannable
  kFlagScanCell = 1u << 1,      // DFF converted to a scan cell
  kFlagObservePoint = 1u << 2,  // DFT-inserted observation point sink
  kFlagDftInserted = 1u << 3,   // any gate added by a DFT transform
  kFlagXBounded = 1u << 4,      // X source that has been bounded
  kFlagScanMux = 1u << 5,       // scan-path mux in front of a scan DFF's D
  kFlagRetimeFf = 1u << 6,      // hold-fix re-timing lockup FF on shift path
};

struct Gate {
  CellKind kind = CellKind::kBuf;
  uint8_t flags = 0;
  DomainId domain;  // valid only for kDff
  std::vector<GateId> fanins;
};

/// Primary output: a name bound to the net that drives it.
struct OutputPort {
  std::string name;
  GateId driver;
};

class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  // --- identity -----------------------------------------------------------
  [[nodiscard]] const std::string& name() const { return name_; }
  void setName(std::string name) { name_ = std::move(name); }

  // --- clock domains ------------------------------------------------------
  DomainId addClockDomain(std::string_view name, uint64_t period_ps);
  [[nodiscard]] const ClockDomain& domain(DomainId id) const;
  [[nodiscard]] size_t numDomains() const { return domains_.size(); }
  [[nodiscard]] std::span<const ClockDomain> domains() const {
    return domains_;
  }

  // --- construction -------------------------------------------------------
  GateId addInput(std::string_view name);
  GateId addConst(bool value);
  GateId addXSource(std::string_view name = {});
  GateId addGate(CellKind kind, std::span<const GateId> fanins);
  GateId addGate(CellKind kind, std::initializer_list<GateId> fanins);
  GateId addDff(GateId d, DomainId domain, std::string_view name = {});
  void addOutput(GateId driver, std::string_view name = {});

  void setGateName(GateId id, std::string_view name);
  [[nodiscard]] std::string gateName(GateId id) const;  // synthesized if unset
  [[nodiscard]] std::optional<GateId> findGateByName(
      std::string_view name) const;

  // --- inspection ---------------------------------------------------------
  [[nodiscard]] size_t numGates() const { return gates_.size(); }
  [[nodiscard]] const Gate& gate(GateId id) const { return gates_[id.v]; }
  [[nodiscard]] std::span<const GateId> inputs() const { return inputs_; }
  [[nodiscard]] std::span<const OutputPort> outputs() const {
    return outputs_;
  }
  [[nodiscard]] std::span<const GateId> dffs() const { return dffs_; }
  [[nodiscard]] std::span<const GateId> xsources() const { return xsources_; }

  /// Gate-equivalent area of the whole netlist (NAND2 == 1.0).
  [[nodiscard]] double gateEquivalents() const;
  /// Gate-equivalent area of DFT-inserted gates only.
  [[nodiscard]] double dftGateEquivalents() const;

  /// Iterates ids 0..numGates-1.
  template <typename Fn>
  void forEachGate(Fn&& fn) const {
    for (uint32_t i = 0; i < gates_.size(); ++i) fn(GateId{i}, gates_[i]);
  }

  // --- editing (DFT transforms) ------------------------------------------
  /// Redirects fanin slot `slot` of `gate` to `new_src`.
  void setFanin(GateId gate, size_t slot, GateId new_src);

  /// Replaces every use of `old_src` as a fanin with `new_src`.
  /// Returns the number of fanin slots rewritten.
  size_t replaceAllUses(GateId old_src, GateId new_src);

  /// Rebinds output port `index` to a new driver net.
  void setOutputDriver(size_t index, GateId new_driver);

  void setFlag(GateId id, GateFlag flag) { gates_[id.v].flags |= flag; }
  void clearFlag(GateId id, GateFlag flag) {
    gates_[id.v].flags &= static_cast<uint8_t>(~flag);
  }
  [[nodiscard]] bool hasFlag(GateId id, GateFlag flag) const {
    return (gates_[id.v].flags & flag) != 0;
  }

  void setDffDomain(GateId id, DomainId domain);

  // --- derived structure ---------------------------------------------------
  /// Fanout adjacency in CSR form; invalidated by any edit.
  struct FanoutMap {
    std::vector<uint32_t> offsets;  // size numGates + 1
    std::vector<GateId> targets;    // concatenated fanout lists

    [[nodiscard]] std::span<const GateId> fanout(GateId id) const {
      return {targets.data() + offsets[id.v],
              targets.data() + offsets[id.v + 1]};
    }
  };
  /// `comb_targets_only` restricts the targets to combinational gates —
  /// the working set of the event-driven simulators (DFF/PO sinks are
  /// observation points, not propagation targets). Same CSR layout,
  /// smaller streams.
  [[nodiscard]] FanoutMap buildFanoutMap(bool comb_targets_only = false) const;

  /// Structural validation; returns an empty string when healthy, else a
  /// description of the first problem found (bad arity, dangling id,
  /// combinational cycle, DFF without domain).
  [[nodiscard]] std::string validate() const;

 private:
  GateId allocGate(Gate gate);

  std::string name_;
  std::vector<Gate> gates_;
  std::vector<GateId> inputs_;
  std::vector<OutputPort> outputs_;
  std::vector<GateId> dffs_;
  std::vector<GateId> xsources_;
  std::vector<ClockDomain> domains_;
  std::unordered_map<uint32_t, std::string> names_;
  std::unordered_map<std::string, uint32_t> name_to_gate_;
};

}  // namespace lbist
