// Strong identifier types shared by every module in the library.
//
// A netlist is a set of single-output gates; the net driven by a gate is
// identified by the gate's id, so `GateId` doubles as a net identifier.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

namespace lbist {

/// Identifier of a gate (and of the net it drives).
struct GateId {
  static constexpr uint32_t kInvalid = std::numeric_limits<uint32_t>::max();

  uint32_t v = kInvalid;

  constexpr GateId() = default;
  constexpr explicit GateId(uint32_t value) : v(value) {}

  [[nodiscard]] constexpr bool valid() const { return v != kInvalid; }

  friend constexpr bool operator==(GateId a, GateId b) { return a.v == b.v; }
  friend constexpr bool operator!=(GateId a, GateId b) { return a.v != b.v; }
  friend constexpr bool operator<(GateId a, GateId b) { return a.v < b.v; }
};

/// Identifier of a clock domain within a netlist.
struct DomainId {
  static constexpr uint16_t kInvalid = std::numeric_limits<uint16_t>::max();

  uint16_t v = kInvalid;

  constexpr DomainId() = default;
  constexpr explicit DomainId(uint16_t value) : v(value) {}

  [[nodiscard]] constexpr bool valid() const { return v != kInvalid; }

  friend constexpr bool operator==(DomainId a, DomainId b) {
    return a.v == b.v;
  }
  friend constexpr bool operator!=(DomainId a, DomainId b) {
    return a.v != b.v;
  }
  friend constexpr bool operator<(DomainId a, DomainId b) { return a.v < b.v; }
};

}  // namespace lbist

template <>
struct std::hash<lbist::GateId> {
  size_t operator()(lbist::GateId id) const noexcept {
    return std::hash<uint32_t>{}(id.v);
  }
};

template <>
struct std::hash<lbist::DomainId> {
  size_t operator()(lbist::DomainId id) const noexcept {
    return std::hash<uint16_t>{}(id.v);
  }
};
