#include "netlist/verilog_io.hpp"

#include <cctype>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace lbist {

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

void writeVerilog(const Netlist& nl, std::ostream& os) {
  for (const ClockDomain& d : nl.domains()) {
    os << "// lbist.domain " << d.name << " " << d.period_ps << "\n";
  }
  os << "module " << (nl.name().empty() ? "core" : nl.name()) << " (";
  bool first = true;
  for (GateId in : nl.inputs()) {
    if (!first) os << ", ";
    os << nl.gateName(in);
    first = false;
  }
  for (const OutputPort& out : nl.outputs()) {
    if (!first) os << ", ";
    os << out.name;
    first = false;
  }
  os << ");\n";

  for (GateId in : nl.inputs()) os << "  input " << nl.gateName(in) << ";\n";
  for (const OutputPort& out : nl.outputs()) {
    os << "  output " << out.name << ";\n";
  }
  nl.forEachGate([&](GateId id, const Gate& g) {
    if (g.kind == CellKind::kInput) return;
    os << "  wire " << nl.gateName(id) << ";\n";
  });

  nl.forEachGate([&](GateId id, const Gate& g) {
    if (g.kind == CellKind::kInput) return;
    os << "  " << cellKindName(g.kind);
    const bool is_dff = g.kind == CellKind::kDff;
    if (is_dff || g.flags != 0) {
      os << " #(";
      bool p_first = true;
      if (is_dff) {
        os << ".domain(\"" << nl.domain(g.domain).name << "\")";
        p_first = false;
      }
      if (g.flags != 0) {
        if (!p_first) os << ", ";
        os << ".flags(" << static_cast<unsigned>(g.flags) << ")";
      }
      os << ")";
    }
    os << " g" << id.v << " (" << nl.gateName(id);
    for (GateId f : g.fanins) os << ", " << nl.gateName(f);
    os << ");\n";
  });

  for (const OutputPort& out : nl.outputs()) {
    os << "  assign " << out.name << " = " << nl.gateName(out.driver) << ";\n";
  }
  os << "endmodule\n";
}

std::string toVerilog(const Netlist& nl) {
  std::ostringstream os;
  writeVerilog(nl, os);
  return os.str();
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

namespace {

struct Token {
  enum class Kind { kIdent, kNumber, kString, kPunct, kEof };
  Kind kind = Kind::kEof;
  std::string text;
  int line = 1;
};

class Lexer {
 public:
  explicit Lexer(std::string text) : text_(std::move(text)) { advance(); }

  const Token& peek() const { return tok_; }

  Token take() {
    Token t = tok_;
    advance();
    return t;
  }

  /// Directive comments collected while scanning ("lbist.domain clk 4000").
  const std::vector<std::pair<int, std::string>>& directives() const {
    return directives_;
  }

  /// Scans the whole input so all directives (wherever they appear) are
  /// known before parsing begins.
  void collectAllDirectives() {
    size_t saved_pos = pos_;
    int saved_line = line_;
    Token saved_tok = tok_;
    while (tok_.kind != Token::Kind::kEof) advance();
    pos_ = saved_pos;
    line_ = saved_line;
    tok_ = saved_tok;
    directives_collected_ = true;
  }

 private:
  void advance() {
    skipSpaceAndComments();
    tok_.line = line_;
    if (pos_ >= text_.size()) {
      tok_ = Token{Token::Kind::kEof, "", line_};
      return;
    }
    const char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '\\') {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_' || text_[pos_] == '$' || text_[pos_] == '.')) {
        ++pos_;
      }
      tok_ = Token{Token::Kind::kIdent, text_.substr(start, pos_ - start),
                   line_};
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      tok_ = Token{Token::Kind::kNumber, text_.substr(start, pos_ - start),
                   line_};
      return;
    }
    if (c == '"') {
      size_t start = ++pos_;
      while (pos_ < text_.size() && text_[pos_] != '"') ++pos_;
      if (pos_ >= text_.size()) {
        throw std::runtime_error("line " + std::to_string(line_) +
                                 ": unterminated string");
      }
      tok_ = Token{Token::Kind::kString, text_.substr(start, pos_ - start),
                   line_};
      ++pos_;
      return;
    }
    tok_ = Token{Token::Kind::kPunct, std::string(1, c), line_};
    ++pos_;
  }

  void skipSpaceAndComments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '/') {
        size_t start = pos_ + 2;
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        std::string comment = text_.substr(start, pos_ - start);
        // Trim leading blanks.
        size_t b = comment.find_first_not_of(" \t");
        if (b != std::string::npos && comment.compare(b, 6, "lbist.") == 0 &&
            !directives_collected_) {
          directives_.emplace_back(line_, comment.substr(b));
        }
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '*') {
        pos_ += 2;
        while (pos_ + 1 < text_.size() &&
               !(text_[pos_] == '*' && text_[pos_ + 1] == '/')) {
          if (text_[pos_] == '\n') ++line_;
          ++pos_;
        }
        pos_ = std::min(pos_ + 2, text_.size());
      } else {
        break;
      }
    }
  }

  std::string text_;
  size_t pos_ = 0;
  int line_ = 1;
  Token tok_;
  std::vector<std::pair<int, std::string>> directives_;
  bool directives_collected_ = false;
};

[[noreturn]] void fail(const Token& at, const std::string& msg) {
  throw std::runtime_error("line " + std::to_string(at.line) + ": " + msg +
                           " (got '" + at.text + "')");
}

struct InstanceParam {
  std::string name;
  std::string value;  // string payload or decimal number
};

struct Instance {
  CellKind kind = CellKind::kBuf;
  std::vector<InstanceParam> params;
  std::string inst_name;
  std::vector<std::string> conns;  // positional: output first
  int line = 1;
};

class Parser {
 public:
  explicit Parser(std::string text) : lex_(std::move(text)) {
    lex_.collectAllDirectives();
  }

  Netlist parse() {
    Netlist nl;
    for (const auto& [line, directive] : lex_.directives()) {
      std::istringstream ds(directive);
      std::string tag, name;
      uint64_t period = 0;
      ds >> tag;
      if (tag == "lbist.domain") {
        if (!(ds >> name >> period)) {
          throw std::runtime_error("line " + std::to_string(line) +
                                   ": malformed lbist.domain directive");
        }
        nl.addClockDomain(name, period);
      }
    }

    expectIdent("module");
    nl.setName(take(Token::Kind::kIdent).text);
    takePunct("(");
    // Port list: names only; direction comes from input/output decls.
    while (!atPunct(")")) {
      take(Token::Kind::kIdent);
      if (atPunct(",")) takePunct(",");
    }
    takePunct(")");
    takePunct(";");

    std::vector<std::string> input_names;
    std::vector<std::string> output_names;
    std::vector<Instance> instances;
    std::vector<std::pair<std::string, std::string>> assigns;  // port, net

    while (!atIdent("endmodule")) {
      const Token head = take(Token::Kind::kIdent);
      if (head.text == "input") {
        readNameList(input_names);
      } else if (head.text == "output") {
        readNameList(output_names);
      } else if (head.text == "wire") {
        std::vector<std::string> ignored;
        readNameList(ignored);
      } else if (head.text == "assign") {
        const std::string lhs = take(Token::Kind::kIdent).text;
        takePunct("=");
        const std::string rhs = take(Token::Kind::kIdent).text;
        takePunct(";");
        assigns.emplace_back(lhs, rhs);
      } else {
        instances.push_back(readInstance(head));
      }
    }

    buildNetlist(nl, input_names, output_names, instances, assigns);
    return nl;
  }

 private:
  void readNameList(std::vector<std::string>& out) {
    out.push_back(take(Token::Kind::kIdent).text);
    while (atPunct(",")) {
      takePunct(",");
      out.push_back(take(Token::Kind::kIdent).text);
    }
    takePunct(";");
  }

  Instance readInstance(const Token& head) {
    Instance inst;
    inst.line = head.line;
    std::string kind_name = head.text;
    if (kind_name == "lbist_dff") kind_name = "dff";
    if (kind_name == "lbist_xsource") kind_name = "xsource";
    if (!cellKindFromName(kind_name, inst.kind)) {
      fail(head, "unknown cell kind '" + head.text + "'");
    }
    if (atPunct("#")) {
      takePunct("#");
      takePunct("(");
      while (!atPunct(")")) {
        takePunct(".");
        InstanceParam p;
        p.name = take(Token::Kind::kIdent).text;
        takePunct("(");
        const Token v = lex_.take();
        if (v.kind != Token::Kind::kString && v.kind != Token::Kind::kNumber) {
          fail(v, "expected parameter value");
        }
        p.value = v.text;
        takePunct(")");
        inst.params.push_back(std::move(p));
        if (atPunct(",")) takePunct(",");
      }
      takePunct(")");
    }
    inst.inst_name = take(Token::Kind::kIdent).text;
    takePunct("(");
    while (!atPunct(")")) {
      inst.conns.push_back(take(Token::Kind::kIdent).text);
      if (atPunct(",")) takePunct(",");
    }
    takePunct(")");
    takePunct(";");
    if (inst.conns.empty()) {
      fail(head, "instance with no connections");
    }
    return inst;
  }

  void buildNetlist(Netlist& nl, const std::vector<std::string>& input_names,
                    const std::vector<std::string>& output_names,
                    const std::vector<Instance>& instances,
                    const std::vector<std::pair<std::string, std::string>>&
                        assigns) {
    std::unordered_map<std::string, GateId> net_by_name;
    for (const std::string& in : input_names) {
      net_by_name.emplace(in, nl.addInput(in));
    }

    // Placeholder fanin used until all drivers exist. Prefer an existing
    // gate so the count stays lossless; a zero-input module gets one
    // scratch tie cell.
    GateId placeholder;
    if (nl.numGates() > 0) {
      placeholder = GateId{0};
    } else {
      placeholder = nl.addConst(false);
      nl.setGateName(placeholder, "__parser_scratch__");
    }

    struct Patch {
      GateId gate;
      size_t slot;
      std::string net;
      int line;
    };
    std::vector<Patch> patches;

    for (const Instance& inst : instances) {
      const std::string& out_net = inst.conns[0];
      const size_t fanin_count = inst.conns.size() - 1;
      GateId id;
      if (inst.kind == CellKind::kDff) {
        DomainId dom;
        uint8_t flags = 0;
        for (const InstanceParam& p : inst.params) {
          if (p.name == "domain") {
            for (uint16_t di = 0; di < nl.numDomains(); ++di) {
              if (nl.domain(DomainId{di}).name == p.value) dom = DomainId{di};
            }
          } else if (p.name == "flags") {
            flags = static_cast<uint8_t>(std::stoul(p.value));
          }
        }
        if (!dom.valid()) {
          throw std::runtime_error(
              "line " + std::to_string(inst.line) +
              ": dff references unknown clock domain");
        }
        if (fanin_count != 1) {
          throw std::runtime_error("line " + std::to_string(inst.line) +
                                   ": dff needs exactly one data fanin");
        }
        id = nl.addDff(placeholder, dom, out_net);
        if (flags != 0) {
          for (int b = 0; b < 8; ++b) {
            if ((flags >> b) & 1u) {
              nl.setFlag(id, static_cast<GateFlag>(1u << b));
            }
          }
        }
        patches.push_back({id, 0, inst.conns[1], inst.line});
      } else if (inst.kind == CellKind::kConst0 ||
                 inst.kind == CellKind::kConst1) {
        id = nl.addConst(inst.kind == CellKind::kConst1);
        nl.setGateName(id, out_net);
      } else if (inst.kind == CellKind::kXSource) {
        id = nl.addXSource(out_net);
      } else if (inst.kind == CellKind::kInput) {
        throw std::runtime_error("line " + std::to_string(inst.line) +
                                 ": 'input' is not instantiable");
      } else {
        std::vector<GateId> fanins(fanin_count, placeholder);
        id = nl.addGate(inst.kind, fanins);
        nl.setGateName(id, out_net);
        for (size_t s = 0; s < fanin_count; ++s) {
          patches.push_back({id, s, inst.conns[s + 1], inst.line});
        }
      }
      for (const InstanceParam& p : inst.params) {
        if (p.name == "flags" && inst.kind != CellKind::kDff) {
          const auto flags = static_cast<uint8_t>(std::stoul(p.value));
          for (int b = 0; b < 8; ++b) {
            if ((flags >> b) & 1u) {
              nl.setFlag(id, static_cast<GateFlag>(1u << b));
            }
          }
        }
      }
      net_by_name.emplace(out_net, id);
    }

    for (const Patch& p : patches) {
      auto it = net_by_name.find(p.net);
      if (it == net_by_name.end()) {
        throw std::runtime_error("line " + std::to_string(p.line) +
                                 ": undriven net '" + p.net + "'");
      }
      nl.setFanin(p.gate, p.slot, it->second);
    }

    for (const std::string& out_name : output_names) {
      const std::pair<std::string, std::string>* match = nullptr;
      for (const auto& a : assigns) {
        if (a.first == out_name) match = &a;
      }
      GateId driver;
      if (match != nullptr) {
        auto it = net_by_name.find(match->second);
        if (it == net_by_name.end()) {
          throw std::runtime_error("assign from undriven net '" +
                                   match->second + "'");
        }
        driver = it->second;
      } else if (auto it = net_by_name.find(out_name);
                 it != net_by_name.end()) {
        driver = it->second;  // output driven directly by an instance
      } else {
        throw std::runtime_error("output port '" + out_name +
                                 "' has no driver");
      }
      nl.addOutput(driver, out_name);
    }

    const std::string problem = nl.validate();
    if (!problem.empty()) {
      throw std::runtime_error("parsed netlist invalid: " + problem);
    }
  }

  // --- token helpers -------------------------------------------------------
  Token take(Token::Kind kind) {
    if (lex_.peek().kind != kind) fail(lex_.peek(), "unexpected token");
    return lex_.take();
  }
  void expectIdent(std::string_view text) {
    const Token t = take(Token::Kind::kIdent);
    if (t.text != text) fail(t, "expected '" + std::string(text) + "'");
  }
  bool atIdent(std::string_view text) {
    return lex_.peek().kind == Token::Kind::kIdent && lex_.peek().text == text;
  }
  bool atPunct(std::string_view text) {
    return lex_.peek().kind == Token::Kind::kPunct && lex_.peek().text == text;
  }
  void takePunct(std::string_view text) {
    if (!atPunct(text)) {
      fail(lex_.peek(), "expected '" + std::string(text) + "'");
    }
    lex_.take();
  }

  Lexer lex_;
};

}  // namespace

Netlist parseVerilog(std::istream& is) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return Parser(buffer.str()).parse();
}

Netlist parseVerilogString(const std::string& text) {
  return Parser(text).parse();
}

}  // namespace lbist
