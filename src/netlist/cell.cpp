#include "netlist/cell.hpp"

#include <cassert>

namespace lbist {

std::string_view cellKindName(CellKind kind) {
  switch (kind) {
    case CellKind::kInput:
      return "input";
    case CellKind::kConst0:
      return "tie0";
    case CellKind::kConst1:
      return "tie1";
    case CellKind::kBuf:
      return "buf";
    case CellKind::kNot:
      return "not";
    case CellKind::kAnd:
      return "and";
    case CellKind::kNand:
      return "nand";
    case CellKind::kOr:
      return "or";
    case CellKind::kNor:
      return "nor";
    case CellKind::kXor:
      return "xor";
    case CellKind::kXnor:
      return "xnor";
    case CellKind::kMux2:
      return "mux2";
    case CellKind::kDff:
      return "dff";
    case CellKind::kXSource:
      return "xsource";
  }
  return "?";
}

bool cellKindFromName(std::string_view name, CellKind& out) {
  for (int i = 0; i < kNumCellKinds; ++i) {
    const auto kind = static_cast<CellKind>(i);
    if (cellKindName(kind) == name) {
      out = kind;
      return true;
    }
  }
  return false;
}

double cellGateEquivalents(CellKind kind, int fanin_count) {
  switch (kind) {
    case CellKind::kInput:
    case CellKind::kConst0:
    case CellKind::kConst1:
    case CellKind::kXSource:
      return 0.0;
    case CellKind::kBuf:
    case CellKind::kNot:
      return 0.5;
    case CellKind::kAnd:
    case CellKind::kNand:
    case CellKind::kOr:
    case CellKind::kNor:
      // n-input simple gate decomposes into (n - 1) two-input gates.
      return 1.0 * static_cast<double>(fanin_count > 1 ? fanin_count - 1 : 1);
    case CellKind::kXor:
    case CellKind::kXnor:
      // XOR is ~2.5x the transistors of a NAND2 per two-input stage.
      return 2.5 * static_cast<double>(fanin_count > 1 ? fanin_count - 1 : 1);
    case CellKind::kMux2:
      return 2.5;
    case CellKind::kDff:
      return 6.0;  // typical mux-D flip-flop weight
  }
  return 1.0;
}

uint64_t evalWord2v(CellKind kind, std::span<const uint64_t> ins) {
  switch (kind) {
    case CellKind::kBuf:
      return ins[0];
    case CellKind::kNot:
      return ~ins[0];
    case CellKind::kAnd: {
      uint64_t acc = ~uint64_t{0};
      for (uint64_t w : ins) acc &= w;
      return acc;
    }
    case CellKind::kNand: {
      uint64_t acc = ~uint64_t{0};
      for (uint64_t w : ins) acc &= w;
      return ~acc;
    }
    case CellKind::kOr: {
      uint64_t acc = 0;
      for (uint64_t w : ins) acc |= w;
      return acc;
    }
    case CellKind::kNor: {
      uint64_t acc = 0;
      for (uint64_t w : ins) acc |= w;
      return ~acc;
    }
    case CellKind::kXor: {
      uint64_t acc = 0;
      for (uint64_t w : ins) acc ^= w;
      return acc;
    }
    case CellKind::kXnor: {
      uint64_t acc = 0;
      for (uint64_t w : ins) acc ^= w;
      return ~acc;
    }
    case CellKind::kMux2:
      // ins = {d0, d1, sel}
      return (ins[0] & ~ins[2]) | (ins[1] & ins[2]);
    default:
      assert(false && "evalWord2v called on non-combinational cell");
      return 0;
  }
}

namespace {

// Three-valued AND of two signals: result is 0 where either input is a
// known 0; X where it is not known-0 and either input is X.
Word3v and3v(const Word3v& a, const Word3v& b) {
  const uint64_t known0 = (~a.v & ~a.x) | (~b.v & ~b.x);
  const uint64_t x = (a.x | b.x) & ~known0;
  const uint64_t v = a.v & b.v & ~x;
  return {v & ~known0, x};
}

Word3v or3v(const Word3v& a, const Word3v& b) {
  const uint64_t known1 = (a.v & ~a.x) | (b.v & ~b.x);
  const uint64_t x = (a.x | b.x) & ~known1;
  const uint64_t v = (a.v | b.v | known1) & ~x;
  return {v, x};
}

Word3v not3v(const Word3v& a) { return {~a.v & ~a.x, a.x}; }

Word3v xor3v(const Word3v& a, const Word3v& b) {
  const uint64_t x = a.x | b.x;
  return {(a.v ^ b.v) & ~x, x};
}

}  // namespace

Word3v evalWord3v(CellKind kind, std::span<const Word3v> ins) {
  switch (kind) {
    case CellKind::kBuf:
      return ins[0].canonical();
    case CellKind::kNot:
      return not3v(ins[0]).canonical();
    case CellKind::kAnd:
    case CellKind::kNand: {
      Word3v acc{~uint64_t{0}, 0};
      for (const Word3v& w : ins) acc = and3v(acc, w);
      if (kind == CellKind::kNand) acc = not3v(acc);
      return acc.canonical();
    }
    case CellKind::kOr:
    case CellKind::kNor: {
      Word3v acc{0, 0};
      for (const Word3v& w : ins) acc = or3v(acc, w);
      if (kind == CellKind::kNor) acc = not3v(acc);
      return acc.canonical();
    }
    case CellKind::kXor:
    case CellKind::kXnor: {
      Word3v acc{0, 0};
      for (const Word3v& w : ins) acc = xor3v(acc, w);
      if (kind == CellKind::kXnor) acc = not3v(acc);
      return acc.canonical();
    }
    case CellKind::kMux2: {
      // out = sel ? d1 : d0; where sel is X the output is X unless d0 == d1
      // and both are known.
      const Word3v& d0 = ins[0];
      const Word3v& d1 = ins[1];
      const Word3v& sel = ins[2];
      const uint64_t sel_known = ~sel.x;
      const uint64_t pick1 = sel.v & sel_known;
      const uint64_t pick0 = ~sel.v & sel_known;
      uint64_t v = (d0.v & pick0) | (d1.v & pick1);
      uint64_t x = (d0.x & pick0) | (d1.x & pick1);
      // sel unknown: output known only where d0 and d1 agree and are known.
      const uint64_t agree =
          ~d0.x & ~d1.x & ~(d0.v ^ d1.v);
      v |= d0.v & sel.x & agree;
      x |= sel.x & ~agree;
      return Word3v{v, x}.canonical();
    }
    case CellKind::kXSource:
      return {0, ~uint64_t{0}};
    default:
      assert(false && "evalWord3v called on non-combinational cell");
      return {0, ~uint64_t{0}};
  }
}

}  // namespace lbist
