// Structural-Verilog-subset writer and reader.
//
// The dialect covers exactly what Netlist can represent: one module,
// scalar ports/wires, primitive instantiations of the cell library, and
// `lbist_dff` / `lbist_xsource` pseudo-primitives carrying clock-domain
// info in a defparam-style comment attribute:
//
//   module core (a, b, y);
//     input a, b;
//     output y;
//     wire n5;
//     and g1 (n5, a, b);
//     lbist_dff #(.domain("clk0")) r1 (y, n5);
//   endmodule
//
// Clock-domain declarations appear as leading comments:
//   // lbist.domain clk0 4000
// (name, period in ps). The reader accepts everything the writer emits,
// giving a lossless round-trip for BIST-ready cores.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace lbist {

/// Serializes `nl` to the structural subset described above.
void writeVerilog(const Netlist& nl, std::ostream& os);
[[nodiscard]] std::string toVerilog(const Netlist& nl);

/// Parse errors carry a 1-based line number.
struct VerilogParseError {
  int line = 0;
  std::string message;
};

/// Parses the structural subset. Returns the netlist, or throws
/// std::runtime_error with a line-annotated message on malformed input.
[[nodiscard]] Netlist parseVerilog(std::istream& is);
[[nodiscard]] Netlist parseVerilogString(const std::string& text);

}  // namespace lbist
