#include "netlist/levelize.hpp"

#include <algorithm>
#include <stdexcept>

namespace lbist {

Levelized::Levelized(const Netlist& nl) {
  const size_t n = nl.numGates();
  level_.assign(n, 0);
  std::vector<uint32_t> pending(n, 0);  // unresolved comb fanins

  std::vector<GateId> ready;
  ready.reserve(n);
  order_.reserve(n);

  nl.forEachGate([&](GateId id, const Gate& g) {
    if (isSource(g.kind)) {
      ready.push_back(id);
      return;
    }
    uint32_t comb_deps = 0;
    for (GateId f : g.fanins) {
      if (isCombinational(nl.gate(f).kind)) ++comb_deps;
    }
    pending[id.v] = comb_deps;
    // Gates fed only by sources become ready immediately; they are
    // released when their source fanins are visited below, so count DFF
    // data pins (non-comb sinks) as always-ready.
    if (comb_deps == 0 && isCombinational(g.kind)) ready.push_back(id);
    if (g.kind == CellKind::kDff && comb_deps == 0) ready.push_back(id);
  });

  const Netlist::FanoutMap fanout = nl.buildFanoutMap();
  size_t cursor = 0;
  std::vector<GateId> queue = std::move(ready);
  while (cursor < queue.size()) {
    const GateId id = queue[cursor++];
    const Gate& g = nl.gate(id);
    uint32_t lvl = 0;
    if (isCombinational(g.kind)) {
      for (GateId f : g.fanins) lvl = std::max(lvl, level_[f.v] + 1);
    }
    level_[id.v] = lvl;
    max_level_ = std::max(max_level_, lvl);
    order_.push_back(id);
    // Only a *combinational* gate's completion satisfies a pending-fanin
    // dependency: `pending` counts combinational fanins, and gates whose
    // comb fanin count is zero were seeded as ready above. Decrementing on
    // source edges would release gates before their comb fanins finalize.
    if (!isCombinational(g.kind)) continue;
    for (GateId t : fanout.fanout(id)) {
      if (!isCombinational(nl.gate(t).kind)) continue;
      if (pending[t.v] > 0 && --pending[t.v] == 0) queue.push_back(t);
    }
  }

  size_t comb_total = 0;
  nl.forEachGate([&](GateId, const Gate& g) {
    if (isCombinational(g.kind)) ++comb_total;
  });
  size_t comb_seen = 0;
  for (GateId id : order_) {
    if (isCombinational(nl.gate(id).kind)) ++comb_seen;
  }
  if (comb_seen != comb_total) {
    throw std::runtime_error("levelization failed: combinational cycle");
  }

  // Bucket combinational gates by level.
  comb_order_.reserve(comb_seen);
  level_offsets_.assign(max_level_ + 2, 0);
  for (GateId id : order_) {
    if (isCombinational(nl.gate(id).kind)) {
      ++level_offsets_[level_[id.v] + 1];
    }
  }
  for (size_t i = 1; i < level_offsets_.size(); ++i) {
    level_offsets_[i] += level_offsets_[i - 1];
  }
  std::vector<uint32_t> fill(level_offsets_.begin(), level_offsets_.end() - 1);
  comb_order_.resize(comb_seen);
  for (GateId id : order_) {
    if (isCombinational(nl.gate(id).kind)) {
      comb_order_[fill[level_[id.v]]++] = id;
    }
  }
}

}  // namespace lbist
