#include "netlist/netlist.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace lbist {

DomainId Netlist::addClockDomain(std::string_view name, uint64_t period_ps) {
  if (period_ps == 0) {
    throw std::invalid_argument("clock domain period must be non-zero");
  }
  domains_.push_back(ClockDomain{std::string(name), period_ps});
  return DomainId{static_cast<uint16_t>(domains_.size() - 1)};
}

const ClockDomain& Netlist::domain(DomainId id) const {
  return domains_.at(id.v);
}

GateId Netlist::allocGate(Gate gate) {
  gates_.push_back(std::move(gate));
  return GateId{static_cast<uint32_t>(gates_.size() - 1)};
}

GateId Netlist::addInput(std::string_view name) {
  const GateId id = allocGate(Gate{CellKind::kInput, 0, DomainId{}, {}});
  inputs_.push_back(id);
  if (!name.empty()) setGateName(id, name);
  return id;
}

GateId Netlist::addConst(bool value) {
  return allocGate(
      Gate{value ? CellKind::kConst1 : CellKind::kConst0, 0, DomainId{}, {}});
}

GateId Netlist::addXSource(std::string_view name) {
  const GateId id = allocGate(Gate{CellKind::kXSource, 0, DomainId{}, {}});
  xsources_.push_back(id);
  if (!name.empty()) setGateName(id, name);
  return id;
}

GateId Netlist::addGate(CellKind kind, std::span<const GateId> fanins) {
  if (!isCombinational(kind)) {
    throw std::invalid_argument(
        "addGate only creates combinational cells; use the dedicated "
        "builders for inputs/constants/DFFs/X-sources");
  }
  const int arity = cellArity(kind);
  if (arity >= 0 && fanins.size() != static_cast<size_t>(arity)) {
    throw std::invalid_argument("wrong fanin count for cell kind");
  }
  if (arity < 0 && fanins.size() < 2) {
    throw std::invalid_argument("variadic gate needs at least two fanins");
  }
  for (GateId f : fanins) {
    if (!f.valid() || f.v >= gates_.size()) {
      throw std::invalid_argument("dangling fanin id");
    }
  }
  Gate g;
  g.kind = kind;
  g.fanins.assign(fanins.begin(), fanins.end());
  return allocGate(std::move(g));
}

GateId Netlist::addGate(CellKind kind, std::initializer_list<GateId> fanins) {
  return addGate(kind, std::span<const GateId>(fanins.begin(), fanins.size()));
}

GateId Netlist::addDff(GateId d, DomainId domain, std::string_view name) {
  if (!d.valid() || d.v >= gates_.size()) {
    throw std::invalid_argument("dangling D fanin");
  }
  if (!domain.valid() || domain.v >= domains_.size()) {
    throw std::invalid_argument("DFF requires a registered clock domain");
  }
  Gate g;
  g.kind = CellKind::kDff;
  g.domain = domain;
  g.fanins = {d};
  const GateId id = allocGate(std::move(g));
  dffs_.push_back(id);
  if (!name.empty()) setGateName(id, name);
  return id;
}

void Netlist::addOutput(GateId driver, std::string_view name) {
  if (!driver.valid() || driver.v >= gates_.size()) {
    throw std::invalid_argument("dangling output driver");
  }
  std::string out_name =
      name.empty() ? "po" + std::to_string(outputs_.size()) : std::string(name);
  outputs_.push_back(OutputPort{std::move(out_name), driver});
}

void Netlist::setGateName(GateId id, std::string_view name) {
  assert(id.v < gates_.size());
  auto [it, inserted] = name_to_gate_.emplace(std::string(name), id.v);
  if (!inserted && it->second != id.v) {
    throw std::invalid_argument("duplicate gate name: " + std::string(name));
  }
  names_[id.v] = std::string(name);
}

std::string Netlist::gateName(GateId id) const {
  if (auto it = names_.find(id.v); it != names_.end()) return it->second;
  return "n" + std::to_string(id.v);
}

std::optional<GateId> Netlist::findGateByName(std::string_view name) const {
  if (auto it = name_to_gate_.find(std::string(name));
      it != name_to_gate_.end()) {
    return GateId{it->second};
  }
  return std::nullopt;
}

double Netlist::gateEquivalents() const {
  double total = 0.0;
  for (const Gate& g : gates_) {
    total += cellGateEquivalents(g.kind, static_cast<int>(g.fanins.size()));
  }
  return total;
}

double Netlist::dftGateEquivalents() const {
  double total = 0.0;
  for (const Gate& g : gates_) {
    if ((g.flags & kFlagDftInserted) != 0) {
      total += cellGateEquivalents(g.kind, static_cast<int>(g.fanins.size()));
    }
  }
  return total;
}

void Netlist::setFanin(GateId gate, size_t slot, GateId new_src) {
  assert(gate.v < gates_.size());
  Gate& g = gates_[gate.v];
  if (slot >= g.fanins.size()) {
    throw std::out_of_range("fanin slot out of range");
  }
  if (!new_src.valid() || new_src.v >= gates_.size()) {
    throw std::invalid_argument("dangling new fanin id");
  }
  g.fanins[slot] = new_src;
}

size_t Netlist::replaceAllUses(GateId old_src, GateId new_src) {
  size_t rewritten = 0;
  for (Gate& g : gates_) {
    for (GateId& f : g.fanins) {
      if (f == old_src) {
        f = new_src;
        ++rewritten;
      }
    }
  }
  for (OutputPort& out : outputs_) {
    if (out.driver == old_src) {
      out.driver = new_src;
      ++rewritten;
    }
  }
  return rewritten;
}

void Netlist::setOutputDriver(size_t index, GateId new_driver) {
  if (index >= outputs_.size()) {
    throw std::out_of_range("output index out of range");
  }
  if (!new_driver.valid() || new_driver.v >= gates_.size()) {
    throw std::invalid_argument("dangling output driver");
  }
  outputs_[index].driver = new_driver;
}

void Netlist::setDffDomain(GateId id, DomainId domain) {
  assert(id.v < gates_.size());
  if (gates_[id.v].kind != CellKind::kDff) {
    throw std::invalid_argument("setDffDomain on non-DFF gate");
  }
  if (!domain.valid() || domain.v >= domains_.size()) {
    throw std::invalid_argument("unknown clock domain");
  }
  gates_[id.v].domain = domain;
}

Netlist::FanoutMap Netlist::buildFanoutMap(bool comb_targets_only) const {
  FanoutMap map;
  map.offsets.assign(gates_.size() + 1, 0);
  for (const Gate& g : gates_) {
    if (comb_targets_only && !isCombinational(g.kind)) continue;
    for (GateId f : g.fanins) ++map.offsets[f.v + 1];
  }
  for (size_t i = 1; i < map.offsets.size(); ++i) {
    map.offsets[i] += map.offsets[i - 1];
  }
  map.targets.resize(map.offsets.back());
  std::vector<uint32_t> cursor(map.offsets.begin(), map.offsets.end() - 1);
  for (uint32_t gi = 0; gi < gates_.size(); ++gi) {
    if (comb_targets_only && !isCombinational(gates_[gi].kind)) continue;
    for (GateId f : gates_[gi].fanins) {
      map.targets[cursor[f.v]++] = GateId{gi};
    }
  }
  return map;
}

std::string Netlist::validate() const {
  for (uint32_t gi = 0; gi < gates_.size(); ++gi) {
    const Gate& g = gates_[gi];
    const int arity = cellArity(g.kind);
    if (arity >= 0 && g.fanins.size() != static_cast<size_t>(arity)) {
      return "gate " + gateName(GateId{gi}) + " has wrong arity";
    }
    if (arity < 0 && g.fanins.size() < 2) {
      return "gate " + gateName(GateId{gi}) + " variadic arity < 2";
    }
    for (GateId f : g.fanins) {
      if (!f.valid() || f.v >= gates_.size()) {
        return "gate " + gateName(GateId{gi}) + " has dangling fanin";
      }
    }
    if (g.kind == CellKind::kDff &&
        (!g.domain.valid() || g.domain.v >= domains_.size())) {
      return "DFF " + gateName(GateId{gi}) + " has no clock domain";
    }
  }
  // Combinational cycle check: iterative DFS over comb gates only (DFFs
  // break cycles by construction).
  enum class Mark : uint8_t { kWhite, kGrey, kBlack };
  std::vector<Mark> mark(gates_.size(), Mark::kWhite);
  std::vector<std::pair<uint32_t, size_t>> stack;
  for (uint32_t root = 0; root < gates_.size(); ++root) {
    if (mark[root] != Mark::kWhite || !isCombinational(gates_[root].kind)) {
      continue;
    }
    stack.emplace_back(root, 0);
    mark[root] = Mark::kGrey;
    while (!stack.empty()) {
      auto& [gi, next] = stack.back();
      const Gate& g = gates_[gi];
      if (next < g.fanins.size()) {
        const uint32_t f = g.fanins[next++].v;
        if (!isCombinational(gates_[f].kind)) continue;
        if (mark[f] == Mark::kGrey) {
          return "combinational cycle through " + gateName(GateId{f});
        }
        if (mark[f] == Mark::kWhite) {
          mark[f] = Mark::kGrey;
          stack.emplace_back(f, 0);
        }
      } else {
        mark[gi] = Mark::kBlack;
        stack.pop_back();
      }
    }
  }
  return {};
}

}  // namespace lbist
