// Primitive cell library: the gate kinds a netlist may contain, their
// arities, and word-parallel evaluation over two- and three-valued logic.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace lbist {

/// Primitive cell kinds.
///
/// Every cell drives exactly one output net. `kMux2` fanin order is
/// {d0, d1, sel} with out = sel ? d1 : d0. `kDff` fanin order is {d};
/// its clock is given by the gate's clock-domain attribute. `kXSource`
/// models an unbounded unknown-value source (uninitialized memory output,
/// floating bus, analog macro pin); it has no fanins and evaluates to X
/// in three-valued simulation.
enum class CellKind : uint8_t {
  kInput,
  kConst0,
  kConst1,
  kBuf,
  kNot,
  kAnd,
  kNand,
  kOr,
  kNor,
  kXor,
  kXnor,
  kMux2,
  kDff,
  kXSource,
};

inline constexpr int kNumCellKinds = static_cast<int>(CellKind::kXSource) + 1;

/// Human-readable mnemonic, also used by the structural Verilog writer.
[[nodiscard]] std::string_view cellKindName(CellKind kind);

/// Parses a mnemonic produced by cellKindName. Returns false on failure.
[[nodiscard]] bool cellKindFromName(std::string_view name, CellKind& out);

/// True for gates evaluated by the combinational simulator.
[[nodiscard]] constexpr bool isCombinational(CellKind kind) {
  switch (kind) {
    case CellKind::kBuf:
    case CellKind::kNot:
    case CellKind::kAnd:
    case CellKind::kNand:
    case CellKind::kOr:
    case CellKind::kNor:
    case CellKind::kXor:
    case CellKind::kXnor:
    case CellKind::kMux2:
      return true;
    default:
      return false;
  }
}

/// True for source cells that take no fanin (level-0 in evaluation order).
[[nodiscard]] constexpr bool isSource(CellKind kind) {
  switch (kind) {
    case CellKind::kInput:
    case CellKind::kConst0:
    case CellKind::kConst1:
    case CellKind::kXSource:
      return true;
    case CellKind::kDff:  // DFF output is a level-0 source for the comb core.
      return true;
    default:
      return false;
  }
}

/// Required fanin count; -1 means variadic (>= 2).
[[nodiscard]] constexpr int cellArity(CellKind kind) {
  switch (kind) {
    case CellKind::kInput:
    case CellKind::kConst0:
    case CellKind::kConst1:
    case CellKind::kXSource:
      return 0;
    case CellKind::kBuf:
    case CellKind::kNot:
    case CellKind::kDff:
      return 1;
    case CellKind::kMux2:
      return 3;
    case CellKind::kAnd:
    case CellKind::kNand:
    case CellKind::kOr:
    case CellKind::kNor:
    case CellKind::kXor:
    case CellKind::kXnor:
      return -1;
  }
  return -1;
}

/// Approximate transistor-pair weight used for area accounting.
/// (2-input NAND == 1.0 gate equivalent, the usual industrial convention.)
[[nodiscard]] double cellGateEquivalents(CellKind kind, int fanin_count);

/// Word-parallel two-valued evaluation: each bit lane of the 64-bit words
/// is an independent pattern. `ins` holds one word per fanin, in fanin
/// order. Source kinds must not be passed here.
[[nodiscard]] uint64_t evalWord2v(CellKind kind, std::span<const uint64_t> ins);

/// Three-valued signal value in (value, unknown-mask) encoding. Where a
/// bit of `x` is 1 the corresponding bit of `v` is meaningless (and kept 0
/// canonically so equal signals compare equal bitwise).
struct Word3v {
  uint64_t v = 0;
  uint64_t x = 0;

  [[nodiscard]] Word3v canonical() const { return {v & ~x, x}; }

  friend bool operator==(const Word3v& a, const Word3v& b) {
    return (a.v & ~a.x) == (b.v & ~b.x) && a.x == b.x;
  }
};

/// Word-parallel three-valued (01X) evaluation with controlling-value
/// X-suppression (an AND with one 0 input is 0 even if the other is X).
[[nodiscard]] Word3v evalWord3v(CellKind kind, std::span<const Word3v> ins);

}  // namespace lbist
