// Netlist statistics reporting: the structural rows of the paper's
// Table 1 (gate count, #FFs, domains, ...) come straight from here.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "netlist/netlist.hpp"

namespace lbist {

struct NetlistStats {
  std::string name;
  size_t total_cells = 0;
  size_t comb_gates = 0;
  size_t dffs = 0;
  size_t scan_dffs = 0;
  size_t no_scan_dffs = 0;
  size_t inputs = 0;
  size_t outputs = 0;
  size_t xsources = 0;
  size_t clock_domains = 0;
  size_t dft_inserted_cells = 0;
  size_t observe_points = 0;
  uint32_t logic_depth = 0;  // max combinational level
  double gate_equivalents = 0.0;
  double dft_gate_equivalents = 0.0;
  std::array<size_t, kNumCellKinds> kind_histogram{};

  /// Area overhead of DFT-inserted logic relative to the original core,
  /// in percent (the "Overhead" row of Table 1).
  [[nodiscard]] double dftOverheadPercent() const {
    const double base = gate_equivalents - dft_gate_equivalents;
    return base <= 0.0 ? 0.0 : 100.0 * dft_gate_equivalents / base;
  }

  [[nodiscard]] std::string toString() const;
};

[[nodiscard]] NetlistStats computeStats(const Netlist& nl);

}  // namespace lbist
