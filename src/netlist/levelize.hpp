// Levelization: topological ordering of the combinational core.
//
// Sources (primary inputs, constants, X-sources, DFF outputs) sit at level
// 0. Every combinational gate gets level = 1 + max(fanin levels). The
// resulting order drives the bit-parallel simulators and the fault
// simulator's event wheel.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace lbist {

class Levelized {
 public:
  /// Builds the levelization. Throws std::runtime_error on a combinational
  /// cycle (use Netlist::validate() first for a friendlier message).
  explicit Levelized(const Netlist& nl);

  /// All gates in non-decreasing level order; sources first.
  [[nodiscard]] std::span<const GateId> order() const { return order_; }

  /// Combinational gates only, in non-decreasing level order.
  [[nodiscard]] std::span<const GateId> combOrder() const {
    return comb_order_;
  }

  [[nodiscard]] uint32_t level(GateId id) const { return level_[id.v]; }
  [[nodiscard]] uint32_t maxLevel() const { return max_level_; }

  /// Gates at a given level (valid for levels 1..maxLevel; combinational
  /// gates only).
  [[nodiscard]] std::span<const GateId> atLevel(uint32_t lvl) const {
    return {comb_order_.data() + level_offsets_[lvl],
            comb_order_.data() + level_offsets_[lvl + 1]};
  }

 private:
  std::vector<GateId> order_;
  std::vector<GateId> comb_order_;
  std::vector<uint32_t> level_;
  std::vector<uint32_t> level_offsets_;
  uint32_t max_level_ = 0;
};

}  // namespace lbist
