#include "netlist/stats.hpp"

#include <sstream>

#include "netlist/levelize.hpp"

namespace lbist {

NetlistStats computeStats(const Netlist& nl) {
  NetlistStats s;
  s.name = nl.name();
  s.total_cells = nl.numGates();
  s.inputs = nl.inputs().size();
  s.outputs = nl.outputs().size();
  s.xsources = nl.xsources().size();
  s.clock_domains = nl.numDomains();
  s.gate_equivalents = nl.gateEquivalents();
  s.dft_gate_equivalents = nl.dftGateEquivalents();

  nl.forEachGate([&](GateId id, const Gate& g) {
    ++s.kind_histogram[static_cast<size_t>(g.kind)];
    if (isCombinational(g.kind)) ++s.comb_gates;
    if (g.kind == CellKind::kDff) {
      ++s.dffs;
      if ((g.flags & kFlagScanCell) != 0) ++s.scan_dffs;
      if ((g.flags & kFlagNoScan) != 0) ++s.no_scan_dffs;
    }
    if ((g.flags & kFlagDftInserted) != 0) ++s.dft_inserted_cells;
    if ((g.flags & kFlagObservePoint) != 0) ++s.observe_points;
    (void)id;
  });

  s.logic_depth = Levelized(nl).maxLevel();
  return s;
}

std::string NetlistStats::toString() const {
  std::ostringstream os;
  os << "netlist '" << name << "': " << total_cells << " cells ("
     << comb_gates << " comb, " << dffs << " dff of which " << scan_dffs
     << " scan / " << no_scan_dffs << " no-scan), " << inputs << " pi, "
     << outputs << " po, " << xsources << " x-sources, " << clock_domains
     << " clock domains, depth " << logic_depth << ", "
     << static_cast<uint64_t>(gate_equivalents) << " gate-equivalents";
  if (dft_gate_equivalents > 0.0) {
    os << " (dft overhead " << dftOverheadPercent() << "%)";
  }
  return os.str();
}

}  // namespace lbist
