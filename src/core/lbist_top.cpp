#include "core/lbist_top.hpp"

#include <sstream>

#include "bist/lfsr.hpp"

namespace lbist::core {

LbistTop::LbistTop(const BistReadyCore& core, const Netlist& die)
    : core_(&core), die_(&die), tap_(kIrLength, kIdcode) {
  seeds_.resize(core.domain_bist.size());
  for (size_t i = 0; i < seeds_.size(); ++i) {
    seeds_[i] = core.domain_bist[i].prpg.seed;
  }

  ctrl_reg_ = std::make_unique<jtag::CallbackRegister>(
      kCtrlBits, nullptr,
      [this](const std::vector<uint8_t>& bits) { updateCtrl(bits); });
  status_reg_ = std::make_unique<jtag::CallbackRegister>(
      2, [this] { return captureStatus(); }, nullptr);

  const size_t seed_bits =
      seeds_.size() * static_cast<size_t>(core.config.prpg_length);
  seed_reg_ = std::make_unique<jtag::CallbackRegister>(
      seed_bits, nullptr,
      [this](const std::vector<uint8_t>& bits) { updateSeed(bits); });

  size_t sig_bits = 0;
  for (const DomainBist& db : core.domain_bist) {
    sig_bits += static_cast<size_t>(db.odc.misr_length);
  }
  sig_reg_ = std::make_unique<jtag::CallbackRegister>(
      sig_bits, [this] { return captureSignature(); }, nullptr);

  tap_.bindInstruction(kOpcodeCtrl, "BIST_CTRL", ctrl_reg_.get());
  tap_.bindInstruction(kOpcodeStatus, "BIST_STATUS", status_reg_.get());
  tap_.bindInstruction(kOpcodeSeed, "PRPG_SEED", seed_reg_.get());
  tap_.bindInstruction(kOpcodeSignature, "MISR_SIG", sig_reg_.get());
}

std::vector<uint8_t> LbistTop::captureStatus() const {
  std::vector<uint8_t> bits(2, 0);
  if (last_) {
    bits[0] = last_->finish ? 1 : 0;       // Finish
    bits[1] = last_->result_pass ? 1 : 0;  // Result
  }
  return bits;
}

std::vector<uint8_t> LbistTop::captureSignature() const {
  std::vector<uint8_t> bits;
  if (!last_) {
    size_t total = 0;
    for (const DomainBist& db : core_->domain_bist) {
      total += static_cast<size_t>(db.odc.misr_length);
    }
    return std::vector<uint8_t>(total, 0);
  }
  for (size_t i = 0; i < core_->domain_bist.size(); ++i) {
    // Hex signature back to bits, LSB first per 64-bit segment word.
    const std::string& hex = last_->signatures[i];
    std::vector<uint64_t> words;
    uint64_t current = 0;
    int digits = 0;
    for (char ch : hex) {
      if (ch == '_') {
        words.push_back(current);
        current = 0;
        digits = 0;
        continue;
      }
      const auto nibble = static_cast<uint64_t>(
          ch <= '9' ? ch - '0' : ch - 'a' + 10);
      current = (current << 4) | nibble;
      ++digits;
    }
    if (digits > 0) words.push_back(current);
    const std::vector<uint8_t> domain_bits = bist::WideMisr::unpackBits(
        words, core_->domain_bist[i].odc.misr_length);
    bits.insert(bits.end(), domain_bits.begin(), domain_bits.end());
  }
  return bits;
}

void LbistTop::updateSeed(const std::vector<uint8_t>& bits) {
  const auto len = static_cast<size_t>(core_->config.prpg_length);
  for (size_t i = 0; i < seeds_.size(); ++i) {
    uint64_t s = 0;
    for (size_t b = 0; b < len; ++b) {
      if (bits[i * len + b] != 0) s |= uint64_t{1} << b;
    }
    seeds_[i] = s;
  }
}

void LbistTop::updateCtrl(const std::vector<uint8_t>& bits) {
  if (bits.empty() || bits[0] == 0) return;  // start bit clear: no-op
  int64_t patterns = 0;
  for (size_t b = 1; b < bits.size(); ++b) {
    if (bits[b] != 0) patterns |= int64_t{1} << (b - 1);
  }
  if (patterns <= 0) patterns = 1;

  // Apply JTAG-loaded seeds by running the session on a copy of the core
  // description with overridden seeds.
  BistReadyCore runnable = *core_;
  for (size_t i = 0; i < seeds_.size(); ++i) {
    runnable.domain_bist[i].prpg.seed = seeds_[i];
  }
  BistSession session(runnable, *die_);
  SessionOptions opts;
  opts.patterns = patterns;

  if (!golden_.empty()) {
    SessionResult golden_res;
    golden_res.signatures = golden_;
    last_ = session.run(opts, &golden_res);
  } else {
    last_ = session.run(opts);
  }
}

std::string describeArchitecture(const BistReadyCore& core) {
  std::ostringstream os;
  os << "LBIST top for core '" << core.netlist.name() << "'\n";
  os << "  BIST-ready core: " << core.netlist.numGates() << " cells, "
     << core.scan.chains.size() << " scan chains (max length "
     << core.scan.max_chain_length << "), " << core.observe_cells.size()
     << " observation points, " << core.xbound.bounded_xsources << "+"
     << core.xbound.bounded_noscan_ffs << " X sources bounded\n";
  os << "  Controller (Start/Finish/Result): " << kControllerGe << " GE\n";
  os << "  Clock gating block: "
     << kClockGatingGePerDomain * static_cast<double>(core.netlist.numDomains())
     << " GE for " << core.netlist.numDomains() << " domains\n";
  os << "  Boundary-Scan TAP: " << kTapGe << " GE\n";
  for (size_t i = 0; i < core.domain_bist.size(); ++i) {
    const DomainBist& db = core.domain_bist[i];
    const ClockDomain& dom = core.netlist.domain(db.domain);
    bist::Prpg prpg(db.prpg);
    bist::Odc odc(db.odc);
    os << "  Domain '" << dom.name << "' (" << dom.freq_mhz() << " MHz): "
       << "PRPG" << i + 1 << " len " << db.prpg.length << " + PS"
       << (prpg.expander() != nullptr ? " + SpE" : "") << " -> "
       << db.chain_indices.size() << " chains -> "
       << (odc.compactor() != nullptr ? "SpC + " : "") << "MISR" << i + 1
       << " len " << db.odc.misr_length << "  ("
       << prpg.gateEquivalents() + odc.gateEquivalents() << " GE)\n";
  }
  os << "  Total DFT overhead: " << core.overheadPercent() << "%\n";
  return os.str();
}

}  // namespace lbist::core
