// BistSession — cycle-accurate emulation of a complete self-test run.
//
// Wires together every block of the paper's Fig. 1 against the BIST-ready
// netlist: the per-domain PRPGs feed scan-in ports through the input
// selector, the clock-gating schedule drives shift and double-capture
// pulses through the sequential simulator, per-domain MISRs compact the
// scan-out streams, and the controller FSM walks Start -> ... -> Finish
// with an on-chip signature compare providing Result.
//
// A golden (fault-free) run provides the reference signatures; running
// the same session against a die with an injected defect must flip
// Result — the end-to-end detection path the coverage numbers assume.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bist/controller.hpp"
#include "bist/prpg.hpp"
#include "core/architect.hpp"
#include "sim/seqsim.hpp"

namespace lbist::core {

struct SessionOptions {
  int64_t patterns = 32;
  /// Domains capture in this order (empty = netlist order). d3 separates
  /// consecutive pairs, so any order works regardless of skew.
  std::vector<DomainId> capture_order;
  /// Extra shift window after the last pattern to flush final responses
  /// into the MISRs (always needed; exposed for the truncation test).
  bool final_unload = true;
  /// Interval-signature windows: snapshot every domain's MISR after each
  /// `signature_interval` completed patterns (0 = none). Diagnosis
  /// (src/diag) narrows a failing run to failing windows from these; the
  /// memory cost is one signature per window per domain.
  int64_t signature_interval = 0;
  /// Replaces the core's capture timing for this run. Diagnosis sessions
  /// over the stuck-at universe disable double capture so the response
  /// dictionary's single-capture model matches the die cycle-for-cycle.
  std::optional<bist::AtSpeedTimingConfig> timing_override;
};

/// MISR states captured at one interval-signature checkpoint.
struct SignatureCheckpoint {
  int64_t patterns_done = 0;
  /// Per DomainBist, the MISR signature words (WideMisr segment order).
  std::vector<std::vector<uint64_t>> domain_words;

  friend bool operator==(const SignatureCheckpoint& a,
                         const SignatureCheckpoint& b) {
    return a.patterns_done == b.patterns_done &&
           a.domain_words == b.domain_words;
  }
};

struct SessionResult {
  std::vector<std::string> signatures;  // per DomainBist, hex
  /// Final MISR words per DomainBist (same data as `signatures`, in the
  /// form the diagnosis algebra consumes).
  std::vector<std::vector<uint64_t>> signature_words;
  /// Interval snapshots, oldest first (empty unless signature_interval).
  std::vector<SignatureCheckpoint> checkpoints;
  int64_t patterns_done = 0;
  uint64_t shift_pulses = 0;
  uint64_t capture_pulses = 0;
  uint64_t session_ps = 0;  // virtual end time
  bool finish = false;
  /// Valid only when golden signatures were provided.
  bool result_pass = false;
};

class BistSession {
 public:
  /// `die` is the netlist to simulate — pass `core.netlist` for a good
  /// die or a mutated copy (fault::injectStuckAt) for a defective one.
  /// The die must be structurally identical to the BIST-ready core
  /// (same ports and scan fabric).
  BistSession(const BistReadyCore& core, const Netlist& die);

  /// Runs a full self-test. When `golden` is non-null the controller
  /// compares against it and SessionResult::result_pass is meaningful.
  [[nodiscard]] SessionResult run(const SessionOptions& opts,
                                  const SessionResult* golden = nullptr);

 private:
  void shiftCycle();
  void seedPrpgs();

  const BistReadyCore* core_;
  const Netlist* die_;
  sim::SeqSimulator sim_;
  std::vector<bist::Prpg> prpgs_;
  std::vector<bist::Odc> odcs_;
  std::vector<std::vector<uint8_t>> slice_;     // per domain, per chain
  std::vector<std::vector<uint8_t>> so_slice_;  // per domain, per chain
};

}  // namespace lbist::core
