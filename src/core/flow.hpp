// Fast coverage flow: PRPG-exact fault simulation of the random phase
// plus the deterministic top-up phase. This is the path that regenerates
// the paper's Table 1 numbers (the cycle-accurate BistSession validates
// the signature plumbing; simulating 20K patterns x full shift windows
// gate-by-gate would be needlessly slow for coverage accounting, exactly
// as in production DFT flows).
//
// "PRPG-exact" means the scan state loaded for pattern p is computed from
// the real per-domain PRPG + phase shifter models over the real shift
// schedule — not from an idealized RNG — so coverage includes any
// structural correlation the TPG hardware would produce.
#pragma once

#include <cstdint>
#include <vector>

#include "atpg/topup.hpp"
#include "core/architect.hpp"
#include "core/pattern_source.hpp"
#include "fault/fsim.hpp"

namespace lbist::core {

struct RandomPhaseResult {
  int64_t patterns = 0;
  fault::Coverage coverage;
  double wall_seconds = 0.0;
};

class CoverageFlow {
 public:
  /// `transition` switches the fault universe to launch-on-capture
  /// transition faults (for the double-capture ablation); default is the
  /// stuck-at universe of Table 1. `fsim_opts` tunes the underlying
  /// fault simulator — lane_words widens the pattern blocks, threads /
  /// batch_blocks drive the batched dispatch; coverage and first-detect
  /// patterns are invariant across all of them (n-detect drop points can
  /// shift within a block when lane_words changes, per the fsim.hpp
  /// contract).
  explicit CoverageFlow(const BistReadyCore& core, bool transition = false,
                        const fault::FsimOptions& fsim_opts = {});

  /// Simulates `n_patterns` PRPG patterns (with fault dropping),
  /// dispatching batch_blocks lane blocks per thread-pool round.
  RandomPhaseResult runRandomPhase(int64_t n_patterns);

  /// Deterministic top-up targeting everything still undetected.
  atpg::TopUpResult runTopUp(const atpg::TopUpConfig& cfg = {});

  [[nodiscard]] fault::FaultList& faults() { return faults_; }
  [[nodiscard]] const fault::FaultList& faults() const { return faults_; }
  /// Structural-collapsing summary of the flow's fault simulator (for
  /// core::renderCollapseStats report lines).
  [[nodiscard]] const fault::CollapseStats& collapseStats() const {
    return fsim_.collapseStats();
  }
  [[nodiscard]] const std::vector<GateId>& observed() const {
    return observed_;
  }
  [[nodiscard]] const std::vector<GateId>& assignable() const {
    return assignable_;
  }

 private:
  const BistReadyCore* core_;
  bool transition_;
  fault::FaultList faults_;
  std::vector<GateId> observed_;
  std::vector<GateId> assignable_;
  fault::FaultSimulator fsim_;
  PrpgPatternSource source_;
};

}  // namespace lbist::core
