// LbistArchitect — the paper's flow that turns a raw IP core into a
// BISTed IP core (Fig. 1):
//
//   1. X-bounding          (section 2.1: "X sources properly blocked")
//   2. test point insertion (fault-simulation-guided observation points,
//                            no control points)
//   3. full-scan insertion with PI/PO wrapper cells
//   4. per-clock-domain PRPG / phase shifter / (expander) sizing and
//      MISR / (compactor) sizing — no compactor by default, so each
//      domain's MISR is at least as long as its chain count (the paper's
//      99- and 80-bit MISRs)
//   5. at-speed timing plan (double capture, slow SE)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bist/clocking.hpp"
#include "bist/prpg.hpp"
#include "dft/scan.hpp"
#include "dft/test_points.hpp"
#include "dft/xbound.hpp"
#include "netlist/netlist.hpp"

namespace lbist::core {

enum class TpiMethod : uint8_t {
  kFaultSim,  // the paper's method
  kCop,       // prior-art baseline
  kNone,
};

struct LbistConfig {
  int num_chains = 16;
  size_t test_points = 64;
  TpiMethod tpi_method = TpiMethod::kFaultSim;
  dft::TpiConfig tpi;  // max_points overridden by test_points

  int prpg_length = 19;  // the paper's value on both cores
  int misr_min_length = 19;
  bool use_space_compactor = false;  // paper section 3 technique (3)
  bool wrap_ios = true;              // paper section 3 technique (2)
  /// Phase-shifter channel separation; must exceed the longest chain.
  uint64_t ps_separation = 0;  // 0 = auto (2 * max chain length)

  bist::AtSpeedTimingConfig timing;
  uint64_t prpg_seed = 0x0001'D00D'F00DULL;
};

/// Per-domain TPG/ODC sizing (one PRPG-MISR pair per clock domain).
struct DomainBist {
  DomainId domain;
  bist::PrpgConfig prpg;
  bist::OdcConfig odc;
  std::vector<size_t> chain_indices;  // into BistReadyCore::scan.chains
};

struct BistReadyCore {
  Netlist netlist;
  dft::ScanResult scan;
  dft::XBoundResult xbound;
  std::vector<GateId> observe_cells;
  std::vector<DomainBist> domain_bist;
  LbistConfig config;

  // Area accounting (gate equivalents, NAND2 == 1).
  double core_ge = 0.0;       // original core, pre-DFT
  double dft_ge = 0.0;        // in-netlist DFT logic (muxes, obs, bounds)
  double bist_logic_ge = 0.0; // PRPG/MISR/controller/TAP blocks

  [[nodiscard]] double overheadPercent() const {
    return core_ge <= 0.0 ? 0.0
                          : 100.0 * (dft_ge + bist_logic_ge) / core_ge;
  }

  /// Shift cycles per pattern (max chain length over all domains).
  [[nodiscard]] int shiftCyclesPerPattern() const {
    return static_cast<int>(scan.max_chain_length);
  }

  [[nodiscard]] const DomainBist* bistFor(DomainId d) const;
};

/// Runs the full flow on a copy of `core`. Throws std::invalid_argument
/// on infeasible configurations (e.g. chain budget below domain count).
[[nodiscard]] BistReadyCore buildBistReadyCore(const Netlist& core,
                                               const LbistConfig& cfg);

/// Fixed gate-equivalent weights for the off-netlist BIST blocks,
/// used by the Table 1 "Overhead" row (values documented in DESIGN.md).
inline constexpr double kControllerGe = 320.0;
inline constexpr double kClockGatingGePerDomain = 45.0;
inline constexpr double kTapGe = 420.0;

}  // namespace lbist::core
