// LbistTop — the executable form of the paper's Fig. 1.
//
// Assembles every block around the BIST-ready core: controller,
// clock-gating schedule, per-domain TPG/ODC (inside BistSession), and the
// Boundary-Scan interface. A host talks to it exactly like silicon:
// TAP reset, load seeds through the SEED register, write the CTRL
// register (pattern count + start), poll STATUS for Finish/Result, and
// unload per-domain signatures through the SIGNATURE register for
// diagnosis.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/architect.hpp"
#include "core/session.hpp"
#include "jtag/tap.hpp"

namespace lbist::core {

class LbistTop {
 public:
  static constexpr uint32_t kIrLength = 4;
  static constexpr uint32_t kOpcodeCtrl = 0b0010;
  static constexpr uint32_t kOpcodeStatus = 0b0011;
  static constexpr uint32_t kOpcodeSeed = 0b0100;
  static constexpr uint32_t kOpcodeSignature = 0b0101;
  static constexpr uint32_t kIdcode = 0x1B15'7001;

  /// CTRL register layout (LSB first): bit 0 start, bits 1..32 pattern
  /// count. Writing it with start=1 runs the whole self-test (the
  /// behavioural model completes synchronously; STATUS then reads
  /// finish=1).
  static constexpr size_t kCtrlBits = 33;

  LbistTop(const BistReadyCore& core, const Netlist& die);

  [[nodiscard]] jtag::TapController& tap() { return tap_; }

  /// Golden signatures for the on-chip compare (from a fault-free run).
  void setGoldenSignatures(std::vector<std::string> sigs) {
    golden_ = std::move(sigs);
  }

  [[nodiscard]] const std::optional<SessionResult>& lastRun() const {
    return last_;
  }

 private:
  std::vector<uint8_t> captureStatus() const;
  std::vector<uint8_t> captureSignature() const;
  void updateCtrl(const std::vector<uint8_t>& bits);
  void updateSeed(const std::vector<uint8_t>& bits);

  const BistReadyCore* core_;
  const Netlist* die_;
  jtag::TapController tap_;
  std::unique_ptr<jtag::CallbackRegister> ctrl_reg_;
  std::unique_ptr<jtag::CallbackRegister> status_reg_;
  std::unique_ptr<jtag::CallbackRegister> seed_reg_;
  std::unique_ptr<jtag::CallbackRegister> sig_reg_;

  std::vector<uint64_t> seeds_;  // per domain
  std::vector<std::string> golden_;
  std::optional<SessionResult> last_;
};

/// Human-readable block inventory of the instantiated architecture
/// (Fig. 1 as text), with per-block gate-equivalent cost.
[[nodiscard]] std::string describeArchitecture(const BistReadyCore& core);

}  // namespace lbist::core
