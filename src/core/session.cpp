#include "core/session.hpp"

#include <stdexcept>

namespace lbist::core {

BistSession::BistSession(const BistReadyCore& core, const Netlist& die)
    : core_(&core), die_(&die), sim_(die) {
  // Injected faults may append tie cells, so the die can be slightly
  // larger than the reference; it must never be smaller.
  if (die.numGates() < core.netlist.numGates() ||
      die.numDomains() != core.netlist.numDomains()) {
    throw std::invalid_argument(
        "die must be structurally compatible with the BIST-ready core");
  }
  for (const DomainBist& db : core.domain_bist) {
    prpgs_.emplace_back(db.prpg);
    odcs_.emplace_back(db.odc);
    slice_.emplace_back(db.chain_indices.size(), 0);
    so_slice_.emplace_back(db.chain_indices.size(), 0);
  }
}

void BistSession::seedPrpgs() {
  for (size_t i = 0; i < prpgs_.size(); ++i) {
    prpgs_[i].loadSeed(core_->domain_bist[i].prpg.seed);
    odcs_[i].reset();
  }
}

void BistSession::shiftCycle() {
  // PRPG outputs feed the SI ports; MISRs compact the SO values present
  // before the edge; then one shift edge clocks every domain, the PRPGs
  // and the MISRs together (they share the slow shift clock).
  for (size_t i = 0; i < prpgs_.size(); ++i) {
    const DomainBist& db = core_->domain_bist[i];
    for (size_t c = 0; c < db.chain_indices.size(); ++c) {
      const dft::ScanChain& chain =
          core_->scan.chains[db.chain_indices[c]];
      so_slice_[i][c] =
          static_cast<uint8_t>(sim_.state(chain.so_driver) & 1u);
    }
    odcs_[i].compact(so_slice_[i]);
    prpgs_[i].nextSlice(slice_[i]);
    for (size_t c = 0; c < db.chain_indices.size(); ++c) {
      const dft::ScanChain& chain =
          core_->scan.chains[db.chain_indices[c]];
      sim_.setInput(chain.si_port, slice_[i][c] != 0 ? ~uint64_t{0} : 0);
    }
  }
  sim_.pulseAll();
}

SessionResult BistSession::run(const SessionOptions& opts,
                               const SessionResult* golden) {
  SessionResult res;

  // Reset: known state everywhere (hardware gets this from the first full
  // shift window; starting from zero keeps the golden run reproducible).
  sim_.resetState(0);
  for (GateId pi : die_->inputs()) sim_.setInput(pi, 0);
  if (core_->scan.test_mode_port.valid()) {
    sim_.setInput(core_->scan.test_mode_port, ~uint64_t{0});
  }
  if (auto tm = die_->findGateByName("test_mode")) {
    sim_.setInput(*tm, ~uint64_t{0});
  }
  seedPrpgs();

  bist::BistController ctrl;
  ctrl.setSignatureInterval(opts.signature_interval);
  ctrl.start();
  ctrl.seedsLoaded();

  const int shift_cycles = core_->shiftCyclesPerPattern();
  const bist::AtSpeedTimingConfig& timing =
      opts.timing_override ? *opts.timing_override : core_->config.timing;
  bist::BistSchedule sched(die_->domains(), timing, shift_cycles,
                           opts.patterns, opts.capture_order);

  auto snapshot = [&]() {
    SignatureCheckpoint cp;
    cp.patterns_done = ctrl.patternsDone();
    for (bist::Odc& odc : odcs_) cp.domain_words.push_back(odc.signature());
    res.checkpoints.push_back(std::move(cp));
  };

  while (auto ev = sched.next()) {
    ctrl.onEvent(*ev);
    if (ctrl.checkpointDue()) snapshot();
    switch (ev->kind) {
      case bist::ScheduleEvent::Kind::kShiftPulse:
        sim_.setInput(core_->scan.se_port, ~uint64_t{0});
        shiftCycle();
        break;
      case bist::ScheduleEvent::Kind::kSeFall:
        sim_.setInput(core_->scan.se_port, 0);
        break;
      case bist::ScheduleEvent::Kind::kLaunchPulse:
      case bist::ScheduleEvent::Kind::kCapturePulse:
        sim_.pulse(ev->domain);
        break;
      case bist::ScheduleEvent::Kind::kSeRise:
        sim_.setInput(core_->scan.se_port, ~uint64_t{0});
        break;
      case bist::ScheduleEvent::Kind::kPatternEnd:
        break;
      case bist::ScheduleEvent::Kind::kSessionEnd:
        res.session_ps = ev->time_ps;
        break;
    }
  }

  // Final unload: shift the last captured responses into the MISRs.
  if (opts.final_unload) {
    sim_.setInput(core_->scan.se_port, ~uint64_t{0});
    for (int s = 0; s < shift_cycles; ++s) shiftCycle();
  }

  res.patterns_done = ctrl.patternsDone();
  res.shift_pulses = ctrl.shiftPulses();
  res.capture_pulses = ctrl.capturePulses();
  for (bist::Odc& odc : odcs_) {
    res.signatures.push_back(odc.signatureHex());
    res.signature_words.push_back(odc.signature());
  }

  bool match = golden != nullptr;
  if (golden != nullptr) {
    if (golden->signatures.size() != res.signatures.size()) {
      match = false;
    } else {
      for (size_t i = 0; i < res.signatures.size(); ++i) {
        if (res.signatures[i] != golden->signatures[i]) match = false;
      }
    }
  }
  ctrl.setSignatureMatch(match);
  res.finish = ctrl.finish();
  res.result_pass = ctrl.result();
  return res;
}

}  // namespace lbist::core
