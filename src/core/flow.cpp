#include "core/flow.hpp"

#include <algorithm>
#include <chrono>

namespace lbist::core {

namespace {

fault::FaultList makeFaults(const Netlist& nl, bool transition) {
  return transition ? fault::FaultList::enumerateTransition(nl)
                    : fault::FaultList::enumerateStuckAt(nl);
}

std::vector<GateId> makeAssignable(const BistReadyCore& core) {
  std::vector<GateId> out;
  const Netlist& nl = core.netlist;
  for (GateId dff : nl.dffs()) {
    if (nl.hasFlag(dff, kFlagScanCell)) out.push_back(dff);
  }
  // Unwrapped non-control PIs (none with wrap_ios, present without).
  std::vector<GateId> skip;
  skip.push_back(core.scan.se_port);
  if (core.scan.test_mode_port.valid()) {
    skip.push_back(core.scan.test_mode_port);
  }
  for (const dft::ScanChain& c : core.scan.chains) skip.push_back(c.si_port);
  for (GateId pi : nl.inputs()) {
    if (std::find(skip.begin(), skip.end(), pi) != skip.end()) continue;
    if (core.config.wrap_ios) continue;  // wrapped: state covers it
    out.push_back(pi);
  }
  return out;
}

}  // namespace

CoverageFlow::CoverageFlow(const BistReadyCore& core, bool transition,
                           const fault::FsimOptions& fsim_opts)
    : core_(&core),
      transition_(transition),
      faults_(makeFaults(core.netlist, transition)),
      observed_(fault::defaultObservationSet(core.netlist)),
      assignable_(makeAssignable(core)),
      fsim_(core.netlist, faults_, observed_, fsim_opts),
      source_(core, fsim_opts.lane_words) {
  fsim_.markUnobservable();
}

RandomPhaseResult CoverageFlow::runRandomPhase(int64_t n_patterns) {
  const auto t0 = std::chrono::steady_clock::now();
  RandomPhaseResult res;
  res.patterns = n_patterns;
  const int64_t block_lanes = static_cast<int64_t>(fsim_.lanes());
  const int64_t batch =
      std::max<int64_t>(1, fsim_.options().batch_blocks);
  for (int64_t base = 0; base < n_patterns;) {
    const int64_t blocks_left =
        (n_patterns - base + block_lanes - 1) / block_lanes;
    const size_t n_blocks =
        static_cast<size_t>(std::min(batch, blocks_left));
    const auto load = [&](size_t b, sim::Simulator2v& sim) -> int {
      const int64_t blk_base = base + static_cast<int64_t>(b) * block_lanes;
      const int lanes = static_cast<int>(
          std::min<int64_t>(block_lanes, n_patterns - blk_base));
      source_.loadBlock(sim, lanes);
      return lanes;
    };
    if (transition_) {
      fsim_.simulateBatchTransition(base, n_blocks, load);
    } else {
      fsim_.simulateBatchStuckAt(base, n_blocks, load);
    }
    base += static_cast<int64_t>(n_blocks) * block_lanes;
  }
  res.coverage = faults_.coverage();
  res.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return res;
}

atpg::TopUpResult CoverageFlow::runTopUp(const atpg::TopUpConfig& cfg) {
  return atpg::runTopUp(core_->netlist, faults_, fsim_, observed_,
                        assignable_, source_.fixedPins(), cfg);
}

}  // namespace lbist::core
