#include "core/flow.hpp"

#include <algorithm>
#include <chrono>

namespace lbist::core {

namespace {

fault::FaultList makeFaults(const Netlist& nl, bool transition) {
  return transition ? fault::FaultList::enumerateTransition(nl)
                    : fault::FaultList::enumerateStuckAt(nl);
}

std::vector<GateId> makeAssignable(const BistReadyCore& core) {
  std::vector<GateId> out;
  const Netlist& nl = core.netlist;
  for (GateId dff : nl.dffs()) {
    if (nl.hasFlag(dff, kFlagScanCell)) out.push_back(dff);
  }
  // Unwrapped non-control PIs (none with wrap_ios, present without).
  std::vector<GateId> skip;
  skip.push_back(core.scan.se_port);
  if (core.scan.test_mode_port.valid()) {
    skip.push_back(core.scan.test_mode_port);
  }
  for (const dft::ScanChain& c : core.scan.chains) skip.push_back(c.si_port);
  for (GateId pi : nl.inputs()) {
    if (std::find(skip.begin(), skip.end(), pi) != skip.end()) continue;
    if (core.config.wrap_ios) continue;  // wrapped: state covers it
    out.push_back(pi);
  }
  return out;
}

}  // namespace

CoverageFlow::CoverageFlow(const BistReadyCore& core, bool transition)
    : core_(&core),
      transition_(transition),
      faults_(makeFaults(core.netlist, transition)),
      observed_(fault::defaultObservationSet(core.netlist)),
      assignable_(makeAssignable(core)),
      fsim_(core.netlist, faults_, observed_),
      source_(core) {
  fsim_.markUnobservable();
}

RandomPhaseResult CoverageFlow::runRandomPhase(int64_t n_patterns) {
  const auto t0 = std::chrono::steady_clock::now();
  RandomPhaseResult res;
  res.patterns = n_patterns;
  for (int64_t base = 0; base < n_patterns; base += 64) {
    const int lanes =
        static_cast<int>(std::min<int64_t>(64, n_patterns - base));
    source_.loadBlock(fsim_, lanes);
    if (transition_) {
      fsim_.simulateBlockTransition(base, lanes);
    } else {
      fsim_.simulateBlockStuckAt(base, lanes);
    }
  }
  res.coverage = faults_.coverage();
  res.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return res;
}

atpg::TopUpResult CoverageFlow::runTopUp(const atpg::TopUpConfig& cfg) {
  return atpg::runTopUp(core_->netlist, faults_, fsim_, observed_,
                        assignable_, source_.fixedPins(), cfg);
}

}  // namespace lbist::core
