#include "core/flow.hpp"

#include <algorithm>
#include <chrono>

namespace lbist::core {

namespace {

fault::FaultList makeFaults(const Netlist& nl, bool transition) {
  return transition ? fault::FaultList::enumerateTransition(nl)
                    : fault::FaultList::enumerateStuckAt(nl);
}

std::vector<GateId> makeAssignable(const BistReadyCore& core) {
  std::vector<GateId> out;
  const Netlist& nl = core.netlist;
  for (GateId dff : nl.dffs()) {
    if (nl.hasFlag(dff, kFlagScanCell)) out.push_back(dff);
  }
  // Unwrapped non-control PIs (none with wrap_ios, present without).
  std::vector<GateId> skip;
  skip.push_back(core.scan.se_port);
  if (core.scan.test_mode_port.valid()) {
    skip.push_back(core.scan.test_mode_port);
  }
  for (const dft::ScanChain& c : core.scan.chains) skip.push_back(c.si_port);
  for (GateId pi : nl.inputs()) {
    if (std::find(skip.begin(), skip.end(), pi) != skip.end()) continue;
    if (core.config.wrap_ios) continue;  // wrapped: state covers it
    out.push_back(pi);
  }
  return out;
}

}  // namespace

CoverageFlow::CoverageFlow(const BistReadyCore& core, bool transition)
    : core_(&core),
      transition_(transition),
      faults_(makeFaults(core.netlist, transition)),
      observed_(fault::defaultObservationSet(core.netlist)),
      assignable_(makeAssignable(core)),
      fsim_(core.netlist, faults_, observed_) {
  fixed_.emplace_back(core.scan.se_port, false);
  if (core.scan.test_mode_port.valid()) {
    fixed_.emplace_back(core.scan.test_mode_port, true);
  }
  for (const DomainBist& db : core.domain_bist) {
    prpgs_.emplace_back(db.prpg);
  }
  cell_words_.assign(core.netlist.numGates(), 0);
  fsim_.markUnobservable();
}

void CoverageFlow::loadBlockSources(int lanes) {
  const Netlist& nl = core_->netlist;
  const int shift_cycles = core_->shiftCyclesPerPattern();

  std::fill(cell_words_.begin(), cell_words_.end(), 0);
  std::vector<std::vector<uint8_t>> slice(prpgs_.size());
  for (size_t i = 0; i < prpgs_.size(); ++i) {
    slice[i].resize(core_->domain_bist[i].chain_indices.size());
  }

  for (int lane = 0; lane < lanes; ++lane) {
    for (size_t i = 0; i < prpgs_.size(); ++i) {
      const DomainBist& db = core_->domain_bist[i];
      for (int k = 0; k < shift_cycles; ++k) {
        prpgs_[i].nextSlice(slice[i]);
        // The bit injected at cycle k ends up in cell (L-1-k) of each
        // chain (closest-to-SI cell receives the last bit).
        const int cell_pos = shift_cycles - 1 - k;
        for (size_t c = 0; c < db.chain_indices.size(); ++c) {
          const dft::ScanChain& chain =
              core_->scan.chains[db.chain_indices[c]];
          if (cell_pos < static_cast<int>(chain.cells.size()) &&
              slice[i][c] != 0) {
            cell_words_[chain.cells[static_cast<size_t>(cell_pos)].v] |=
                uint64_t{1} << lane;
          }
        }
      }
    }
  }

  for (GateId pi : nl.inputs()) fsim_.setSource(pi, 0);
  for (GateId dff : nl.dffs()) fsim_.setSource(dff, cell_words_[dff.v]);
  for (const auto& [id, v] : fixed_) {
    fsim_.setSource(id, v ? ~uint64_t{0} : 0);
  }
}

RandomPhaseResult CoverageFlow::runRandomPhase(int64_t n_patterns) {
  const auto t0 = std::chrono::steady_clock::now();
  RandomPhaseResult res;
  res.patterns = n_patterns;
  for (int64_t base = 0; base < n_patterns; base += 64) {
    const int lanes =
        static_cast<int>(std::min<int64_t>(64, n_patterns - base));
    loadBlockSources(lanes);
    if (transition_) {
      fsim_.simulateBlockTransition(base, lanes);
    } else {
      fsim_.simulateBlockStuckAt(base, lanes);
    }
  }
  res.coverage = faults_.coverage();
  res.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return res;
}

atpg::TopUpResult CoverageFlow::runTopUp(const atpg::TopUpConfig& cfg) {
  return atpg::runTopUp(core_->netlist, faults_, fsim_, observed_,
                        assignable_, fixed_, cfg);
}

}  // namespace lbist::core
