// PRPG-exact scan-state source for block fault simulation.
//
// Computes, for lane-block-sized pattern groups (64 * laneWords()
// patterns), the per-scan-cell stimulus rows the real per-domain PRPG +
// phase-shifter hardware shifts in over the shift schedule, and loads
// them into a FaultSimulator. Shared by the coverage flow (Table 1
// accounting) and the diagnosis dictionary builder (src/diag) so both
// agree bit-for-bit with the cycle-accurate BistSession on what
// "pattern p" is. Widening the lane block never changes which stimulus
// pattern p receives — the PRPG stream is consumed strictly in pattern
// order regardless of how many lanes each block packs.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "bist/prpg.hpp"
#include "core/architect.hpp"
#include "fault/fsim.hpp"

namespace lbist::core {

class PrpgPatternSource {
 public:
  /// Binds `core` and sizes the per-cell stimulus rows for blocks of
  /// `lane_words` 64-bit words (one of sim::isSupportedLaneWords();
  /// must match the sink simulator's width).
  explicit PrpgPatternSource(const BistReadyCore& core,
                             size_t lane_words = 1);

  /// Lane-block width in 64-bit words.
  [[nodiscard]] size_t laneWords() const { return lane_words_; }
  /// Maximum patterns per loadBlock call (64 * laneWords()).
  [[nodiscard]] size_t lanes() const { return lane_words_ * 64; }

  /// Loads sources for the next `lanes` patterns into `fsim`: PIs held 0,
  /// SE low / test-mode high, every scan cell set to the state the PRPGs
  /// shift in. Advances the PRPGs; successive calls emit consecutive
  /// pattern blocks.
  void loadBlock(fault::FaultSimulator& fsim, int lanes);

  /// Same block semantics into a bare 2-valued simulator — consumers
  /// that need PRPG-exact states without a fault list (the soc power
  /// estimator samples switching activity this way).
  void loadBlock(sim::Simulator2v& sim, int lanes);

  /// Pins the session holds at a fixed level during capture (SE low,
  /// test-mode high) — also what deterministic top-up must respect.
  [[nodiscard]] const std::vector<std::pair<GateId, bool>>& fixedPins()
      const {
    return fixed_;
  }

 private:
  void computeCellWords(int lanes);

  const BistReadyCore* core_;
  size_t lane_words_;
  std::vector<bist::Prpg> prpgs_;
  std::vector<std::pair<GateId, bool>> fixed_;
  // Per-gate stimulus rows for the current block, gate-major with
  // stride laneWords(): gate g's lanes at [g*W, g*W + W).
  std::vector<uint64_t> cell_words_;
  std::vector<std::vector<uint8_t>> slice_;
};

}  // namespace lbist::core
