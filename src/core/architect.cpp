#include "core/architect.hpp"

#include <algorithm>
#include <stdexcept>

namespace lbist::core {

const DomainBist* BistReadyCore::bistFor(DomainId d) const {
  for (const DomainBist& db : domain_bist) {
    if (db.domain == d) return &db;
  }
  return nullptr;
}

BistReadyCore buildBistReadyCore(const Netlist& core,
                                 const LbistConfig& cfg) {
  BistReadyCore out;
  out.config = cfg;
  out.netlist = core;  // transform a copy; the caller keeps the original
  out.core_ge = core.gateEquivalents();

  // 1. X-bounding.
  out.xbound = dft::boundAllX(out.netlist);

  // 2. Test points (before scan so the new cells get stitched).
  if (cfg.test_points > 0 && cfg.tpi_method != TpiMethod::kNone) {
    std::vector<GateId> nets;
    if (cfg.tpi_method == TpiMethod::kFaultSim) {
      dft::TpiConfig tpi = cfg.tpi;
      tpi.max_points = cfg.test_points;
      nets = dft::selectObservePointsFaultSim(out.netlist, tpi).points;
    } else {
      nets = dft::selectObservePointsCop(out.netlist, cfg.test_points);
    }
    out.observe_cells = dft::insertObservePoints(out.netlist, nets);
  }

  // 3. Full scan with IO wrapping.
  dft::ScanConfig scan_cfg;
  scan_cfg.num_chains = cfg.num_chains;
  scan_cfg.wrap_ios = cfg.wrap_ios;
  out.scan = dft::insertScan(out.netlist, scan_cfg);

  const std::string problem = out.netlist.validate();
  if (!problem.empty()) {
    throw std::logic_error("BIST-ready netlist invalid: " + problem);
  }

  // 4. Per-domain PRPG/MISR sizing.
  const uint64_t separation =
      cfg.ps_separation != 0
          ? cfg.ps_separation
          : 2 * std::max<uint64_t>(1, out.scan.max_chain_length);
  for (uint16_t d = 0; d < out.netlist.numDomains(); ++d) {
    std::vector<size_t> chain_idx;
    for (size_t c = 0; c < out.scan.chains.size(); ++c) {
      if (out.scan.chains[c].domain == DomainId{d}) chain_idx.push_back(c);
    }
    if (chain_idx.empty()) continue;

    DomainBist db;
    db.domain = DomainId{d};
    db.chain_indices = chain_idx;
    db.prpg.length = cfg.prpg_length;
    db.prpg.chains = static_cast<int>(chain_idx.size());
    db.prpg.seed = cfg.prpg_seed + d;  // distinct, deterministic seeds
    db.prpg.shifter.separation = separation;
    db.prpg.shifter.slack = 16;
    db.odc.chains = static_cast<int>(chain_idx.size());
    db.odc.use_compactor = cfg.use_space_compactor;
    db.odc.misr_length =
        cfg.use_space_compactor
            ? cfg.misr_min_length
            : std::max(cfg.misr_min_length,
                       static_cast<int>(chain_idx.size()));
    out.domain_bist.push_back(std::move(db));
  }

  // 5. Timing plan sanity.
  const std::string timing_problem =
      cfg.timing.validate(out.netlist.domains());
  if (!timing_problem.empty()) {
    throw std::invalid_argument("timing config: " + timing_problem);
  }

  // Area accounting.
  out.dft_ge = out.netlist.dftGateEquivalents();
  out.bist_logic_ge = kControllerGe + kTapGe +
                      kClockGatingGePerDomain *
                          static_cast<double>(out.netlist.numDomains());
  for (const DomainBist& db : out.domain_bist) {
    out.bist_logic_ge += bist::Prpg(db.prpg).gateEquivalents();
    out.bist_logic_ge += bist::Odc(db.odc).gateEquivalents();
  }
  return out;
}

}  // namespace lbist::core
