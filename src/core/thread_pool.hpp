// Persistent worker pool for shard-parallel loops.
//
// One pool serves many dispatch rounds: run(n_shards, fn) hands shard
// indices [0, n_shards) to the workers and blocks until every shard has
// finished. The calling thread participates as a worker, so a pool built
// for N threads holds N-1 OS threads. Shards are claimed under the pool
// mutex — shards are coarse (typically one per thread), so the lock is
// cold and the claim path stays trivially race-free across generations.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace lbist::core {

class ThreadPool {
 public:
  /// `threads` is the total parallelism including the caller; the pool
  /// spawns `threads - 1` workers. `threads == 0` uses the hardware
  /// concurrency (at least 1).
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism (workers + caller).
  [[nodiscard]] unsigned threads() const {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Runs fn(shard) for every shard in [0, n_shards). Shards are claimed
  /// dynamically, so uneven shard costs still balance. Blocks until all
  /// shards complete; fn must not call run() on the same pool.
  ///
  /// A throwing shard never escapes a worker thread (which would
  /// std::terminate the process): every exception is captured, the
  /// remaining shards still run to completion, and after the round the
  /// exception from the lowest-numbered throwing shard is rethrown on
  /// the caller — a deterministic merge point regardless of which
  /// thread executed the shard. Callers that need per-shard failure
  /// granularity catch inside fn and record structured results instead.
  void run(unsigned n_shards, const std::function<void(unsigned)>& fn);

 private:
  void workerLoop();
  void runShardCaptured(const std::function<void(unsigned)>& fn,
                        unsigned shard);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(unsigned)>* job_ = nullptr;
  // Exceptions captured this round, keyed by shard; rethrow picks the
  // lowest shard so the surfaced error is thread-schedule independent.
  std::vector<std::pair<unsigned, std::exception_ptr>> errors_;
  unsigned n_shards_ = 0;
  unsigned next_shard_ = 0;
  unsigned pending_ = 0;
  uint64_t generation_ = 0;
  bool stop_ = false;
};

}  // namespace lbist::core
