#include "core/thread_pool.hpp"

#include <algorithm>
#include <string>

#include "obs/obs.hpp"

namespace lbist::core {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads - 1);
  for (unsigned i = 0; i + 1 < threads; ++i) {
    // Label each worker's trace track up front (the caller thread is
    // worker 0); a one-time shard registration, free thereafter.
    workers_.emplace_back([this, i] {
      obs::setThreadName("pool-worker-" + std::to_string(i + 1));
      workerLoop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

// Runs one shard with exception capture: a throw is recorded under the
// pool mutex instead of unwinding into the worker loop (worker threads
// would std::terminate) or skipping the pending_ bookkeeping (the
// caller would deadlock waiting for a shard that already died).
void ThreadPool::runShardCaptured(const std::function<void(unsigned)>& fn,
                                  unsigned shard) {
  try {
    fn(shard);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    errors_.emplace_back(shard, std::current_exception());
  }
}

void ThreadPool::run(unsigned n_shards,
                     const std::function<void(unsigned)>& fn) {
  if (n_shards == 0) return;
  if (workers_.empty() || n_shards == 1) {
    errors_.clear();
    for (unsigned s = 0; s < n_shards; ++s) runShardCaptured(fn, s);
  } else {
    std::unique_lock<std::mutex> lock(mutex_);
    errors_.clear();
    job_ = &fn;
    n_shards_ = n_shards;
    next_shard_ = 0;
    pending_ = n_shards;
    ++generation_;
    work_cv_.notify_all();
    while (next_shard_ < n_shards_) {
      const unsigned shard = next_shard_++;
      lock.unlock();
      runShardCaptured(fn, shard);
      lock.lock();
      --pending_;
    }
    done_cv_.wait(lock, [this] { return pending_ == 0; });
    job_ = nullptr;
  }
  // All shards have completed; surface at most one failure, chosen by
  // shard number so the observed exception does not depend on thread
  // scheduling.
  if (!errors_.empty()) {
    auto first = std::min_element(
        errors_.begin(), errors_.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    std::exception_ptr e = first->second;
    errors_.clear();
    std::rethrow_exception(e);
  }
}

void ThreadPool::workerLoop() {
  uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_cv_.wait(lock,
                  [&] { return stop_ || generation_ != seen_generation; });
    if (stop_) return;
    seen_generation = generation_;
    while (next_shard_ < n_shards_) {
      const unsigned shard = next_shard_++;
      const std::function<void(unsigned)>* job = job_;
      lock.unlock();
      runShardCaptured(*job, shard);
      lock.lock();
      --pending_;
      if (pending_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace lbist::core
