#include "core/thread_pool.hpp"

#include <algorithm>
#include <string>

#include "obs/obs.hpp"

namespace lbist::core {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads - 1);
  for (unsigned i = 0; i + 1 < threads; ++i) {
    // Label each worker's trace track up front (the caller thread is
    // worker 0); a one-time shard registration, free thereafter.
    workers_.emplace_back([this, i] {
      obs::setThreadName("pool-worker-" + std::to_string(i + 1));
      workerLoop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::run(unsigned n_shards,
                     const std::function<void(unsigned)>& fn) {
  if (n_shards == 0) return;
  if (workers_.empty() || n_shards == 1) {
    for (unsigned s = 0; s < n_shards; ++s) fn(s);
    return;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  job_ = &fn;
  n_shards_ = n_shards;
  next_shard_ = 0;
  pending_ = n_shards;
  ++generation_;
  work_cv_.notify_all();
  while (next_shard_ < n_shards_) {
    const unsigned shard = next_shard_++;
    lock.unlock();
    fn(shard);
    lock.lock();
    --pending_;
  }
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  job_ = nullptr;
}

void ThreadPool::workerLoop() {
  uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_cv_.wait(lock,
                  [&] { return stop_ || generation_ != seen_generation; });
    if (stop_) return;
    seen_generation = generation_;
    while (next_shard_ < n_shards_) {
      const unsigned shard = next_shard_++;
      const std::function<void(unsigned)>* job = job_;
      lock.unlock();
      (*job)(shard);
      lock.lock();
      --pending_;
      if (pending_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace lbist::core
