#include "core/pattern_source.hpp"

#include <algorithm>

namespace lbist::core {

PrpgPatternSource::PrpgPatternSource(const BistReadyCore& core)
    : core_(&core) {
  for (const DomainBist& db : core.domain_bist) {
    prpgs_.emplace_back(db.prpg);
    slice_.emplace_back(db.chain_indices.size(), 0);
  }
  fixed_.emplace_back(core.scan.se_port, false);
  if (core.scan.test_mode_port.valid()) {
    fixed_.emplace_back(core.scan.test_mode_port, true);
  }
  cell_words_.assign(core.netlist.numGates(), 0);
}

void PrpgPatternSource::loadBlock(fault::FaultSimulator& fsim, int lanes) {
  const Netlist& nl = core_->netlist;
  const int shift_cycles = core_->shiftCyclesPerPattern();

  std::fill(cell_words_.begin(), cell_words_.end(), 0);

  for (int lane = 0; lane < lanes; ++lane) {
    for (size_t i = 0; i < prpgs_.size(); ++i) {
      const DomainBist& db = core_->domain_bist[i];
      for (int k = 0; k < shift_cycles; ++k) {
        prpgs_[i].nextSlice(slice_[i]);
        // The bit injected at cycle k ends up in cell (L-1-k) of each
        // chain (closest-to-SI cell receives the last bit).
        const int cell_pos = shift_cycles - 1 - k;
        for (size_t c = 0; c < db.chain_indices.size(); ++c) {
          const dft::ScanChain& chain =
              core_->scan.chains[db.chain_indices[c]];
          if (cell_pos < static_cast<int>(chain.cells.size()) &&
              slice_[i][c] != 0) {
            cell_words_[chain.cells[static_cast<size_t>(cell_pos)].v] |=
                uint64_t{1} << lane;
          }
        }
      }
    }
  }

  for (GateId pi : nl.inputs()) fsim.setSource(pi, 0);
  for (GateId dff : nl.dffs()) fsim.setSource(dff, cell_words_[dff.v]);
  for (const auto& [id, v] : fixed_) {
    fsim.setSource(id, v ? ~uint64_t{0} : 0);
  }
}

}  // namespace lbist::core
