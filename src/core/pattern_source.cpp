#include "core/pattern_source.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "obs/obs.hpp"
#include "sim/lane.hpp"

namespace lbist::core {

PrpgPatternSource::PrpgPatternSource(const BistReadyCore& core,
                                     size_t lane_words)
    : core_(&core), lane_words_(lane_words) {
  if (!sim::isSupportedLaneWords(lane_words)) {
    throw std::invalid_argument("PrpgPatternSource: unsupported lane_words");
  }
  for (const DomainBist& db : core.domain_bist) {
    prpgs_.emplace_back(db.prpg);
    slice_.emplace_back(db.chain_indices.size(), 0);
  }
  fixed_.emplace_back(core.scan.se_port, false);
  if (core.scan.test_mode_port.valid()) {
    fixed_.emplace_back(core.scan.test_mode_port, true);
  }
  cell_words_.assign(core.netlist.numGates() * lane_words_, 0);
}

void PrpgPatternSource::computeCellWords(int lanes) {
  assert(lanes >= 0 && static_cast<size_t>(lanes) <= this->lanes());
  OBS_SPAN("prpg.block_load");
  OBS_COUNT("prpg.block_loads", 1);
  OBS_COUNT("prpg.patterns", static_cast<uint64_t>(lanes));
  const int shift_cycles = core_->shiftCyclesPerPattern();

  std::fill(cell_words_.begin(), cell_words_.end(), 0);

  for (int lane = 0; lane < lanes; ++lane) {
    const size_t word = static_cast<size_t>(lane) / 64;
    const uint64_t bit = uint64_t{1} << (lane % 64);
    for (size_t i = 0; i < prpgs_.size(); ++i) {
      const DomainBist& db = core_->domain_bist[i];
      for (int k = 0; k < shift_cycles; ++k) {
        prpgs_[i].nextSlice(slice_[i]);
        // The bit injected at cycle k ends up in cell (L-1-k) of each
        // chain (closest-to-SI cell receives the last bit).
        const int cell_pos = shift_cycles - 1 - k;
        for (size_t c = 0; c < db.chain_indices.size(); ++c) {
          const dft::ScanChain& chain =
              core_->scan.chains[db.chain_indices[c]];
          if (cell_pos < static_cast<int>(chain.cells.size()) &&
              slice_[i][c] != 0) {
            cell_words_[chain.cells[static_cast<size_t>(cell_pos)].v *
                            lane_words_ +
                        word] |= bit;
          }
        }
      }
    }
  }
}

namespace {

/// One source-application path for every sink exposing
/// setSource(GateId, uint64_t) + setSourceRow(GateId, const uint64_t*)
/// — the overloads below must never drift. Constant-across-lanes pins
/// (PIs, fixed control) broadcast; scan cells copy their stride-W rows.
template <typename Sink>
void applySources(const BistReadyCore& core, size_t lane_words,
                  const std::vector<uint64_t>& cell_words,
                  const std::vector<std::pair<GateId, bool>>& fixed,
                  Sink& sink) {
  const Netlist& nl = core.netlist;
  for (GateId pi : nl.inputs()) sink.setSource(pi, 0);
  for (GateId dff : nl.dffs()) {
    sink.setSourceRow(dff, cell_words.data() + size_t{dff.v} * lane_words);
  }
  for (const auto& [id, v] : fixed) {
    sink.setSource(id, v ? ~uint64_t{0} : 0);
  }
}

}  // namespace

void PrpgPatternSource::loadBlock(fault::FaultSimulator& fsim, int lanes) {
  assert(fsim.laneWords() == lane_words_ &&
         "pattern source / simulator lane width mismatch");
  computeCellWords(lanes);
  applySources(*core_, lane_words_, cell_words_, fixed_, fsim);
}

void PrpgPatternSource::loadBlock(sim::Simulator2v& sim, int lanes) {
  assert(sim.laneWords() == lane_words_ &&
         "pattern source / simulator lane width mismatch");
  computeCellWords(lanes);
  applySources(*core_, lane_words_, cell_words_, fixed_, sim);
}

}  // namespace lbist::core
