#include "core/pattern_source.hpp"

#include <algorithm>

namespace lbist::core {

PrpgPatternSource::PrpgPatternSource(const BistReadyCore& core)
    : core_(&core) {
  for (const DomainBist& db : core.domain_bist) {
    prpgs_.emplace_back(db.prpg);
    slice_.emplace_back(db.chain_indices.size(), 0);
  }
  fixed_.emplace_back(core.scan.se_port, false);
  if (core.scan.test_mode_port.valid()) {
    fixed_.emplace_back(core.scan.test_mode_port, true);
  }
  cell_words_.assign(core.netlist.numGates(), 0);
}

void PrpgPatternSource::computeCellWords(int lanes) {
  const int shift_cycles = core_->shiftCyclesPerPattern();

  std::fill(cell_words_.begin(), cell_words_.end(), 0);

  for (int lane = 0; lane < lanes; ++lane) {
    for (size_t i = 0; i < prpgs_.size(); ++i) {
      const DomainBist& db = core_->domain_bist[i];
      for (int k = 0; k < shift_cycles; ++k) {
        prpgs_[i].nextSlice(slice_[i]);
        // The bit injected at cycle k ends up in cell (L-1-k) of each
        // chain (closest-to-SI cell receives the last bit).
        const int cell_pos = shift_cycles - 1 - k;
        for (size_t c = 0; c < db.chain_indices.size(); ++c) {
          const dft::ScanChain& chain =
              core_->scan.chains[db.chain_indices[c]];
          if (cell_pos < static_cast<int>(chain.cells.size()) &&
              slice_[i][c] != 0) {
            cell_words_[chain.cells[static_cast<size_t>(cell_pos)].v] |=
                uint64_t{1} << lane;
          }
        }
      }
    }
  }
}

namespace {

/// One source-application path for every sink exposing
/// setSource(GateId, uint64_t) — the overloads below must never drift.
template <typename Sink>
void applySources(const BistReadyCore& core,
                  const std::vector<uint64_t>& cell_words,
                  const std::vector<std::pair<GateId, bool>>& fixed,
                  Sink& sink) {
  const Netlist& nl = core.netlist;
  for (GateId pi : nl.inputs()) sink.setSource(pi, 0);
  for (GateId dff : nl.dffs()) sink.setSource(dff, cell_words[dff.v]);
  for (const auto& [id, v] : fixed) {
    sink.setSource(id, v ? ~uint64_t{0} : 0);
  }
}

}  // namespace

void PrpgPatternSource::loadBlock(fault::FaultSimulator& fsim, int lanes) {
  computeCellWords(lanes);
  applySources(*core_, cell_words_, fixed_, fsim);
}

void PrpgPatternSource::loadBlock(sim::Simulator2v& sim, int lanes) {
  computeCellWords(lanes);
  applySources(*core_, cell_words_, fixed_, sim);
}

}  // namespace lbist::core
