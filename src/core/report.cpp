#include "core/report.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <map>
#include <sstream>

namespace lbist::core {

namespace {

std::string withK(size_t n) {
  if (n >= 10'000) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(1)
       << static_cast<double>(n) / 1000.0 << "K";
    return os.str();
  }
  return std::to_string(n);
}

std::string percent(double p) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2) << p << "%";
  return os.str();
}

}  // namespace

std::string formatDuration(double seconds) {
  const auto total = static_cast<uint64_t>(std::llround(seconds));
  const uint64_t h = total / 3600;
  const uint64_t m = (total % 3600) / 60;
  const uint64_t s = total % 60;
  std::ostringstream os;
  if (h > 0) os << h << "h";
  if (h > 0 || m > 0) os << m << "m";
  os << s << "s";
  return os.str();
}

Table1Column buildTable1Column(const NetlistStats& original_stats,
                               const BistReadyCore& core,
                               const RandomPhaseResult& random_phase,
                               const atpg::TopUpResult& topup,
                               double total_cpu_seconds) {
  Table1Column col;
  col.core_name = original_stats.name;
  col.gate_count = original_stats.total_cells;
  col.ffs = original_stats.dffs;
  col.scan_chains = core.scan.chains.size();
  col.max_chain_length = core.scan.max_chain_length;
  col.clock_domains = core.netlist.numDomains();
  for (const ClockDomain& d : core.netlist.domains()) {
    col.freq_mhz = std::max(col.freq_mhz, d.freq_mhz());
  }
  col.num_prpgs = core.domain_bist.size();
  col.prpg_length = core.config.prpg_length;
  col.num_misrs = core.domain_bist.size();
  {
    // Group identical MISR lengths, paper style "7: 19 / 1: 80".
    std::map<int, int> by_len;
    for (const DomainBist& db : core.domain_bist) {
      ++by_len[db.odc.misr_length];
    }
    std::ostringstream os;
    bool first = true;
    for (const auto& [len, count] : by_len) {
      if (!first) os << " / ";
      os << count << ": " << len;
      first = false;
    }
    col.misr_lengths = os.str();
  }
  col.test_points = core.observe_cells.size();
  col.random_patterns = random_phase.patterns;
  col.fault_coverage_1 = random_phase.coverage.faultCoveragePercent();
  col.cpu_seconds = total_cpu_seconds;
  col.overhead_percent = core.overheadPercent();
  col.topup_patterns = topup.patterns.size();
  col.fault_coverage_2 = topup.final_coverage.faultCoveragePercent();
  return col;
}

std::string renderTable1(std::span<const Table1Column> cols) {
  struct Row {
    std::string label;
    std::vector<std::string> cells;
  };
  std::vector<Row> rows;
  auto add = [&](const std::string& label,
                 auto&& value_of) {
    Row r{label, {}};
    for (const Table1Column& c : cols) r.cells.push_back(value_of(c));
    rows.push_back(std::move(r));
  };

  add("Gate Count", [](const auto& c) { return withK(c.gate_count); });
  add("# of FFs", [](const auto& c) { return withK(c.ffs); });
  add("# of Scan Chains",
      [](const auto& c) { return std::to_string(c.scan_chains); });
  add("Max. Chain Length",
      [](const auto& c) { return std::to_string(c.max_chain_length); });
  add("# of Clock Domains",
      [](const auto& c) { return std::to_string(c.clock_domains); });
  add("Frequency", [](const auto& c) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(0) << c.freq_mhz << "MHz";
    return os.str();
  });
  add("# of PRPGs", [](const auto& c) { return std::to_string(c.num_prpgs); });
  add("PRPG Length",
      [](const auto& c) { return std::to_string(c.prpg_length); });
  add("# of MISRs", [](const auto& c) { return std::to_string(c.num_misrs); });
  add("MISR Length", [](const auto& c) { return c.misr_lengths; });
  add("# of Test Points", [](const auto& c) {
    return std::to_string(c.test_points) + " (Obv-Only)";
  });
  add("# of Random Patterns",
      [](const auto& c) {
        return withK(static_cast<size_t>(c.random_patterns));
      });
  add("Fault Coverage 1",
      [](const auto& c) { return percent(c.fault_coverage_1); });
  add("CPU Time", [](const auto& c) { return formatDuration(c.cpu_seconds); });
  add("Overhead", [](const auto& c) { return percent(c.overhead_percent); });
  add("# of Top-Up Patterns",
      [](const auto& c) { return std::to_string(c.topup_patterns); });
  add("Fault Coverage 2",
      [](const auto& c) { return percent(c.fault_coverage_2); });

  size_t label_w = 0;
  for (const Row& r : rows) label_w = std::max(label_w, r.label.size());
  std::vector<size_t> col_w(cols.size(), 0);
  for (size_t i = 0; i < cols.size(); ++i) {
    col_w[i] = cols[i].core_name.size();
    for (const Row& r : rows) col_w[i] = std::max(col_w[i], r.cells[i].size());
  }

  std::ostringstream os;
  os << std::left << std::setw(static_cast<int>(label_w)) << "" << "  ";
  for (size_t i = 0; i < cols.size(); ++i) {
    os << std::setw(static_cast<int>(col_w[i])) << cols[i].core_name << "  ";
  }
  os << "\n";
  os << std::string(label_w, '-') << "  ";
  for (size_t i = 0; i < cols.size(); ++i) {
    os << std::string(col_w[i], '-') << "  ";
  }
  os << "\n";
  for (const Row& r : rows) {
    os << std::setw(static_cast<int>(label_w)) << r.label << "  ";
    for (size_t i = 0; i < cols.size(); ++i) {
      os << std::setw(static_cast<int>(col_w[i])) << r.cells[i] << "  ";
    }
    os << "\n";
  }
  return os.str();
}

std::string renderUndetectedFaults(const Netlist& nl,
                                   const fault::FaultList& faults,
                                   size_t max_faults) {
  const std::vector<size_t> undet = faults.undetectedIndices();
  std::ostringstream os;
  os << "undetected faults: " << undet.size();
  if (undet.empty()) {
    os << "\n";
    return os.str();
  }
  os << " (showing " << std::min(max_faults, undet.size()) << ")\n";
  for (size_t k = 0; k < undet.size() && k < max_faults; ++k) {
    os << "  " << faults.record(undet[k]).fault.describe(nl) << "\n";
  }
  return os.str();
}

std::string renderCollapseStats(const fault::CollapseStats& s) {
  std::ostringstream os;
  if (s.classes == 0) {
    os << "fault collapsing: off\n";
    return os.str();
  }
  os << "fault collapsing: " << s.total << " faults -> " << s.classes
     << " classes (" << std::fixed << std::setprecision(1)
     << s.foldedPercent() << "% folded), " << s.dominance_prunable
     << " dominance-prunable ATPG targets\n";
  return os.str();
}

std::string renderAtpgStats(const atpg::TopUpResult& r) {
  std::ostringstream os;
  const double per_target =
      r.targeted == 0 ? 0.0
                      : static_cast<double>(r.backtracks) /
                            static_cast<double>(r.targeted);
  os << "top-up ATPG: " << r.targeted << " targets -> " << r.atpg_detected
     << " cubes, " << r.proven_untestable << " untestable, "
     << r.proven_redundant << " redundant, " << r.aborted << " aborted; "
     << r.backtracks << " backtracks (" << std::fixed << std::setprecision(1)
     << per_target << "/target)";
  if (r.sat_escalated != 0 || r.sat_conflicts != 0) {
    os << "; SAT " << r.sat_escalated << " escalated -> " << r.sat_detected
       << " cubes (" << r.sat_conflicts << " conflicts, " << r.sat_learned
       << " learned)";
  }
  if (r.patterns_before_compact != r.patterns.size()) {
    os << "; reverse compaction " << r.patterns_before_compact << " -> "
       << r.patterns.size() << " patterns";
  }
  os << "\n";
  return os.str();
}

std::string renderScheduleStats(const soc::TestSchedule& s) {
  std::ostringstream os;
  os << "SoC schedule: " << s.sessions.size() << " cores -> "
     << s.groups.size() << " groups; peak power " << std::fixed
     << std::setprecision(1) << s.peakPower() << "/" << s.power_budget
     << " toggles/cycle; total " << s.total_tcks << " TCKs (serial "
     << s.serial_tcks << ", speedup " << std::setprecision(2) << s.speedup()
     << "x, " << s.boundRatio() << "x of bound)\n";
  return os.str();
}

}  // namespace lbist::core
