// Table 1 report assembly and rendering: the same 17 rows the paper
// prints for Core X / Core Y, generated from measured flow results.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "atpg/topup.hpp"
#include "core/architect.hpp"
#include "core/flow.hpp"
#include "netlist/stats.hpp"
#include "soc/schedule.hpp"

namespace lbist::core {

struct Table1Column {
  std::string core_name;
  size_t gate_count = 0;   // original core cells (pre-DFT)
  size_t ffs = 0;          // original flip-flops
  size_t scan_chains = 0;
  size_t max_chain_length = 0;
  size_t clock_domains = 0;
  double freq_mhz = 0.0;   // fastest functional clock
  size_t num_prpgs = 0;
  int prpg_length = 0;
  size_t num_misrs = 0;
  std::string misr_lengths;  // paper style: "7: 19 / 1: 80"
  size_t test_points = 0;
  int64_t random_patterns = 0;
  double fault_coverage_1 = 0.0;
  double cpu_seconds = 0.0;
  double overhead_percent = 0.0;
  size_t topup_patterns = 0;
  double fault_coverage_2 = 0.0;
};

[[nodiscard]] Table1Column buildTable1Column(
    const NetlistStats& original_stats, const BistReadyCore& core,
    const RandomPhaseResult& random_phase, const atpg::TopUpResult& topup,
    double total_cpu_seconds);

/// "25m43s"-style rendering of a duration.
[[nodiscard]] std::string formatDuration(double seconds);

/// Renders one table with a column per core, row names as in the paper.
[[nodiscard]] std::string renderTable1(std::span<const Table1Column> cols);

/// Lists up to `max_faults` still-undetected faults by site name, port
/// and type (Fault::describe) — the residue a flow report shows instead
/// of raw gate ids.
[[nodiscard]] std::string renderUndetectedFaults(
    const Netlist& nl, const fault::FaultList& faults,
    size_t max_faults = 10);

/// One-line summary of the structural collapsing a flow's fault
/// simulator ran with: universe size, equivalence classes, fold
/// percentage, dominance-prunable ATPG targets.
[[nodiscard]] std::string renderCollapseStats(const fault::CollapseStats& s);

/// One-line summary of a top-up ATPG run for flow reports: targets,
/// cube hits, untestability and redundancy proofs, abort count,
/// backtrack totals (mean per target), the SAT escalation tally when
/// any solver ran, and the reverse-compaction pattern delta.
[[nodiscard]] std::string renderAtpgStats(const atpg::TopUpResult& r);

/// One-line summary of a chip-level test schedule for flow reports:
/// cores, concurrent groups, peak vs budget power, total TCKs, and the
/// serial-vs-scheduled test-time speedup with the instance-bound ratio.
[[nodiscard]] std::string renderScheduleStats(const soc::TestSchedule& s);

}  // namespace lbist::core
