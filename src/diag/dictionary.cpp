#include "diag/dictionary.hpp"

#include <algorithm>
#include <bit>
#include <chrono>

#include "core/pattern_source.hpp"
#include "fault/fsim.hpp"
#include "obs/obs.hpp"

namespace lbist::diag {

ResponseDictionary::ResponseDictionary(size_t n_faults, int64_t n_patterns)
    : n_faults_(n_faults),
      n_patterns_(n_patterns),
      words_per_fault_(static_cast<size_t>((n_patterns + 63) / 64)) {
  bits_.assign(n_faults_ * words_per_fault_, 0);
}

void ResponseDictionary::recordMask(size_t fault, int64_t pattern_base,
                                    uint64_t mask) {
  bits_[fault * words_per_fault_ +
        static_cast<size_t>(pattern_base / 64)] |= mask;
}

void ResponseDictionary::recordMask(size_t fault, int64_t pattern_base,
                                    sim::LaneMask mask) {
  const size_t base = static_cast<size_t>(pattern_base / 64);
  uint64_t* row = bits_.data() + fault * words_per_fault_;
  const size_t n = std::min(
      mask.words(), words_per_fault_ > base ? words_per_fault_ - base : 0);
  for (size_t wi = 0; wi < n; ++wi) row[base + wi] |= mask.word(wi);
}

bool ResponseDictionary::detects(size_t fault, int64_t pattern) const {
  const uint64_t word = bits_[fault * words_per_fault_ +
                              static_cast<size_t>(pattern / 64)];
  return ((word >> (pattern % 64)) & 1u) != 0;
}

int64_t ResponseDictionary::firstDetection(size_t fault) const {
  const auto r = row(fault);
  for (size_t w = 0; w < r.size(); ++w) {
    if (r[w] != 0) {
      return static_cast<int64_t>(w) * 64 + std::countr_zero(r[w]);
    }
  }
  return -1;
}

size_t ResponseDictionary::detectionCount(size_t fault) const {
  size_t n = 0;
  for (uint64_t w : row(fault)) n += static_cast<size_t>(std::popcount(w));
  return n;
}

std::vector<int64_t> ResponseDictionary::failingPatterns(size_t fault) const {
  std::vector<int64_t> out;
  const auto r = row(fault);
  for (size_t w = 0; w < r.size(); ++w) {
    uint64_t bits = r[w];
    while (bits != 0) {
      const int lane = std::countr_zero(bits);
      out.push_back(static_cast<int64_t>(w) * 64 + lane);
      bits &= bits - 1;
    }
  }
  return out;
}

std::vector<GateId> misrObservationSet(const Netlist& nl) {
  std::vector<GateId> obs;
  for (GateId dff : nl.dffs()) {
    const Gate& g = nl.gate(dff);
    if ((g.flags & kFlagScanCell) != 0) obs.push_back(g.fanins[0]);
  }
  std::sort(obs.begin(), obs.end());
  obs.erase(std::unique(obs.begin(), obs.end()), obs.end());
  return obs;
}

namespace {

class DictionaryRecorder final : public fault::DetectionObserver {
 public:
  explicit DictionaryRecorder(ResponseDictionary& dict) : dict_(&dict) {}
  void onDetectionMask(size_t fault_index, int64_t pattern_base,
                       sim::LaneMask detect_mask) override {
    dict_->recordMask(fault_index, pattern_base, detect_mask);
  }

 private:
  ResponseDictionary* dict_;
};

}  // namespace

ResponseDictionary buildResponseDictionary(const core::BistReadyCore& core,
                                           fault::FaultList& faults,
                                           int64_t n_patterns,
                                           uint32_t threads, bool transition,
                                           DictionaryBuildStats* stats,
                                           uint32_t min_faults_per_thread,
                                           uint32_t lane_words) {
  OBS_SPAN("diag.dict_build");
  OBS_COUNT("diag.dict_builds", 1);
  OBS_COUNT("diag.dict_rows", faults.size());
  const auto t0 = std::chrono::steady_clock::now();
  ResponseDictionary dict(faults.size(), n_patterns);
  DictionaryRecorder recorder(dict);
  // The dictionary is the build's dominant allocation (BENCH_diag's
  // 1.3 MB at 7k gates); held for the whole build so the gauge peak
  // sees it coexist with the simulator's lane arrays.
  obs::GaugeCharge dict_charge;
  if (obs::metricsEnabled()) {
    dict_charge = obs::GaugeCharge(obs::gaugeId("diag.dict_bytes"),
                                   static_cast<int64_t>(dict.bytes()));
  }

  fault::FsimOptions opts;
  opts.threads = threads;
  opts.min_faults_per_thread = min_faults_per_thread;
  opts.drop_detected = false;  // complete rows, not first detections
  opts.lane_words = lane_words;
  fault::FaultSimulator fsim(core.netlist, faults,
                             misrObservationSet(core.netlist), opts);
  fsim.markUnobservable();
  fsim.setDetectionObserver(&recorder);

  // Stuck-at rows use the staged-capture engine so they match the
  // diagnosis session's staggered per-domain capture pulses exactly
  // (stage order = schedule default = clock domains in netlist order).
  // Transition rows keep the broadside double-capture model.
  std::vector<std::vector<GateId>> stages(core.netlist.numDomains());
  for (GateId dff : core.netlist.dffs()) {
    stages[core.netlist.gate(dff).domain.v].push_back(dff);
  }

  core::PrpgPatternSource source(core, lane_words);
  const int64_t block_lanes = static_cast<int64_t>(fsim.lanes());
  {
    OBS_SPAN("diag.dict_simulate");
    for (int64_t base = 0; base < n_patterns; base += block_lanes) {
      const int lanes =
          static_cast<int>(std::min<int64_t>(block_lanes, n_patterns - base));
      source.loadBlock(fsim, lanes);
      if (transition) {
        fsim.simulateBlockTransition(base, lanes);
      } else {
        fsim.simulateBlockStuckAtStaged(base, lanes, stages);
      }
      OBS_COUNT("diag.dict_blocks", 1);
      // Rate-curve anchor: this loop is serial in the build thread and
      // each simulate call has already merged its shards, so the
      // counters are quiescent here.
      OBS_SAMPLE("diag.dict_block", base + lanes);
    }
  }

  if (stats != nullptr) {
    stats->patterns = n_patterns;
    stats->faults = faults.size();
    stats->faults_with_detections = 0;
    for (size_t i = 0; i < faults.size(); ++i) {
      if (dict.firstDetection(i) >= 0) ++stats->faults_with_detections;
    }
    stats->bytes = dict.bytes();
    stats->seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }
  return dict;
}

}  // namespace lbist::diag
