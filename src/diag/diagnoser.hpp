// Signature-based fault diagnosis: from a failing BIST run to a ranked
// list of candidate fault sites.
//
// Three-stage flow on top of the detect-only pipeline:
//
//  1. NARROW — the golden and failing sessions record interval MISR
//     checkpoints (SessionOptions::signature_interval). Because the MISR
//     is linear, the signature difference D evolves autonomously between
//     checkpoints (D' = A^cycles * D) unless new errors entered, so the
//     set of error-injecting windows falls straight out of the
//     checkpoint trace; binary-search replay of truncated sessions then
//     pins the first failing pattern in O(log n) re-runs.
//  2. MATCH — a response dictionary (per-fault, per-pattern detection
//     bitmaps from the parallel PPSFP engine, see dictionary.hpp) is
//     intersected against the observed failing windows/patterns; exact
//     matches first, then nearest-neighbour Jaccard scoring for
//     unmodeled defects. Candidates that cannot structurally reach every
//     failing clock domain's MISR are pruned (multi-domain sessions).
//  3. CONFIRM — the top stuck-at candidates are injected into a die copy
//     and re-run through the cycle-accurate session; a candidate that
//     reproduces the observed checkpoint trace bit-for-bit is confirmed.
//
// Stuck-at diagnosis runs its sessions single-capture, and the dictionary
// is built with the staged-capture fault simulator
// (FaultSimulator::simulateBlockStuckAtStaged) so the staggered
// per-domain capture order — including fault effects hopping clock
// domains through freshly captured state — matches the die
// cycle-for-cycle. The transition universe keeps the at-speed
// double-capture schedule with a broadside dictionary model.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/architect.hpp"
#include "core/session.hpp"
#include "diag/dictionary.hpp"
#include "fault/fault.hpp"

namespace lbist::diag {

/// Knobs for the three-stage diagnosis flow (see file comment).
struct DiagnosisOptions {
  /// Diagnostic session length. Shorter than a production run: the goal
  /// is resolution per CPU second, not coverage.
  int64_t patterns = 256;
  /// Checkpoint every this many patterns. Smaller windows cost one
  /// stored signature per window per domain but narrow failures faster
  /// (memory/resolution trade-off; 1 = per-pattern resolution).
  int64_t signature_interval = 32;
  /// Worker threads for the dictionary build (results thread-invariant).
  uint32_t threads = 1;
  /// Forwarded to FsimOptions; tests lower it so tiny circuits still
  /// exercise the parallel dictionary path.
  uint32_t min_faults_per_thread = 256;
  /// Diagnose against the transition (launch-on-capture) universe
  /// instead of stuck-at.
  bool transition = false;
  /// Ranked candidates to report.
  size_t max_candidates = 10;
  /// How many top candidates to confirm by injected session replay
  /// (stuck-at universes only; transition faults cannot be hardwired).
  size_t confirm_top = 10;
  /// Pin the first failing pattern by binary-search replay.
  bool locate_first_fail = true;
  /// Re-run both sessions with per-pattern checkpoints to recover the
  /// exact failing-pattern set (2 extra runs). Matching then happens at
  /// pattern granularity instead of window granularity — essential when
  /// a gross defect dirties every window and the window bitmap stops
  /// discriminating. Disable for the ATE-style windows-only flow.
  bool exact_pattern_replay = true;
};

/// What the tester observed: which checkpoint windows injected new MISR
/// errors, optionally refined to exact failing patterns. Window indices
/// 0..C-1 are the interval checkpoints; index C is the final signature
/// (which also covers the unload of the last capture).
struct Syndrome {
  int64_t patterns = 0;
  int64_t signature_interval = 0;
  std::vector<uint8_t> dirty_windows;     // size numWindows()
  std::vector<int64_t> failing_patterns;  // exact set; empty = unknown
  int64_t first_failing_pattern = -1;     // -1 = unknown
  /// Per DomainBist index: 1 if that domain's signature diverged.
  /// Empty = unknown (single-signature testers).
  std::vector<uint8_t> failing_domains;

  /// Checkpoint count incl. the final signature (dirty_windows size).
  [[nodiscard]] size_t numWindows() const {
    return static_cast<size_t>(
        signature_interval > 0 ? patterns / signature_interval + 1 : 1);
  }
  /// True when at least one window injected new MISR errors.
  [[nodiscard]] bool anyDirty() const;
};

/// Checkpoint window whose signature first includes the scanned-out
/// response of `pattern`: capture(p) shifts into the MISR during pattern
/// p+1's shift window, so it lands in window (p+1)/interval, clamped to
/// the final-signature window.
[[nodiscard]] int64_t windowOfPattern(int64_t pattern, int64_t interval,
                                      size_t num_windows);

/// One ranked fault-site hypothesis in a Diagnosis.
struct Candidate {
  size_t fault_index = 0;
  fault::Fault fault;
  std::string description;  // Fault::describe
  double score = 0.0;       // Jaccard of failing sets, [0, 1]
  bool exact_match = false;
  bool first_fail_match = false;
  bool confirmed = false;  // session replay reproduced the trace
};

/// Full diagnosis outcome: syndrome, ranked candidates, and the cost /
/// resolution statistics the diag bench tracks.
struct Diagnosis {
  /// False when the die passed (signatures matched) — no candidates.
  bool failed = false;
  Syndrome syndrome;
  std::vector<Candidate> candidates;  // ranked, best first
  /// Candidates tied with the best pre-confirmation match — the
  /// diagnostic resolution (1 = unambiguous).
  size_t tied_top = 0;
  size_t session_runs = 0;
  size_t faults_simulated = 0;
  double dictionary_seconds = 0.0;
  size_t dictionary_bytes = 0;
  double total_seconds = 0.0;
};

/// Drives the NARROW -> MATCH -> CONFIRM flow for one BIST-ready core,
/// caching the golden run and the response dictionary across calls.
class Diagnoser {
 public:
  /// `core` must outlive the diagnoser (sessions replay against it).
  Diagnoser(const core::BistReadyCore& core, DiagnosisOptions opts = {});

  /// Full flow against a (defective) die netlist: golden + failing
  /// interval runs, window narrowing, binary-search replay, dictionary
  /// match, injected-session confirmation.
  [[nodiscard]] Diagnosis diagnoseDie(const Netlist& bad_die);

  /// Matching only, from an externally observed syndrome (e.g. ATE
  /// checkpoint data). No sessions are run and nothing is confirmed.
  [[nodiscard]] Diagnosis diagnoseSyndrome(const Syndrome& syndrome);

  /// Syndrome a given dictionary fault would produce — lets callers
  /// exercise diagnosis for universes that cannot be hardwired into a
  /// die (transition faults).
  [[nodiscard]] Syndrome syndromeForFault(size_t fault_index);

  /// The fault universe being diagnosed (indices match Candidates).
  [[nodiscard]] const fault::FaultList& faults() const { return faults_; }

  /// The response dictionary (built on first use).
  [[nodiscard]] const ResponseDictionary& dictionary();

  /// The options the diagnoser was constructed with.
  [[nodiscard]] const DiagnosisOptions& options() const { return opts_; }

 private:
  [[nodiscard]] core::SessionOptions sessionOptions() const;
  [[nodiscard]] core::SessionResult runSession(const Netlist& die,
                                               const core::SessionOptions& o);
  const core::SessionResult& goldenRun();
  [[nodiscard]] Syndrome extractSyndrome(
      const core::SessionResult& golden,
      const core::SessionResult& failing) const;
  [[nodiscard]] int64_t binarySearchFirstFail(const Netlist& bad_die,
                                              int64_t lo, int64_t hi,
                                              size_t& session_runs);
  void ensureDictionary();
  void matchSyndrome(const Syndrome& syndrome, Diagnosis& out);
  void confirmCandidates(const core::SessionResult& observed,
                         Diagnosis& out);
  [[nodiscard]] uint32_t domainReachMask(const fault::Fault& f) const;

  const core::BistReadyCore* core_;
  DiagnosisOptions opts_;
  fault::FaultList faults_;
  std::optional<ResponseDictionary> dict_;
  DictionaryBuildStats dict_stats_;
  std::optional<core::SessionResult> golden_;
  // Per DomainBist, per gate: 1 if the gate's sequential backward cone
  // reaches that domain's MISR observation set (capture ordering lets
  // fault effects hop domains through freshly captured state, so only
  // the sequential closure is a safe filter).
  std::vector<std::vector<uint8_t>> domain_reach_;
};

/// Human-readable diagnosis report: verdict, syndrome, ranked sites with
/// match flags, and resolution stats.
[[nodiscard]] std::string renderDiagnosisReport(const Diagnosis& d);

}  // namespace lbist::diag
