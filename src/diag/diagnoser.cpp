#include "diag/diagnoser.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "bist/lfsr.hpp"
#include "fault/inject.hpp"

namespace lbist::diag {

namespace {

std::vector<uint64_t> xorWords(const std::vector<uint64_t>& a,
                               const std::vector<uint64_t>& b) {
  std::vector<uint64_t> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] ^ b[i];
  return out;
}

bool anyBit(const std::vector<uint64_t>& w) {
  for (uint64_t v : w) {
    if (v != 0) return true;
  }
  return false;
}

}  // namespace

bool Syndrome::anyDirty() const {
  return std::any_of(dirty_windows.begin(), dirty_windows.end(),
                     [](uint8_t d) { return d != 0; });
}

int64_t windowOfPattern(int64_t pattern, int64_t interval,
                        size_t num_windows) {
  const int64_t last = static_cast<int64_t>(num_windows) - 1;
  if (interval <= 0) return last;
  return std::min<int64_t>((pattern + 1) / interval, last);
}

Diagnoser::Diagnoser(const core::BistReadyCore& core, DiagnosisOptions opts)
    : core_(&core),
      opts_(opts),
      faults_(opts.transition
                  ? fault::FaultList::enumerateTransition(core.netlist)
                  : fault::FaultList::enumerateStuckAt(core.netlist)) {
  if (opts_.patterns <= 0) {
    throw std::invalid_argument("Diagnoser: patterns must be positive");
  }
  if (opts_.signature_interval <= 0) {
    throw std::invalid_argument(
        "Diagnoser: signature_interval must be positive");
  }

  // Per-domain reverse reachability to that domain's MISR observation
  // set: candidates that cannot reach a failing domain's signature are
  // impossible single-fault explanations. The closure crosses DFF
  // boundaries: with per-domain capture ordering, a fault can corrupt
  // another domain through state another domain captured earlier in the
  // same window, so only the full sequential backward cone is a safe
  // (conservative) filter.
  const Netlist& nl = core.netlist;
  domain_reach_.resize(core.domain_bist.size());
  for (size_t i = 0; i < core.domain_bist.size(); ++i) {
    std::vector<uint8_t>& reaches = domain_reach_[i];
    reaches.assign(nl.numGates(), 0);
    std::vector<GateId> queue;
    for (size_t ci : core.domain_bist[i].chain_indices) {
      for (GateId cell : core.scan.chains[ci].cells) {
        const GateId driver = nl.gate(cell).fanins[0];
        if (reaches[driver.v] == 0) {
          reaches[driver.v] = 1;
          queue.push_back(driver);
        }
      }
    }
    while (!queue.empty()) {
      const GateId g = queue.back();
      queue.pop_back();
      for (GateId f : nl.gate(g).fanins) {
        if (reaches[f.v] == 0) {
          reaches[f.v] = 1;
          queue.push_back(f);
        }
      }
    }
  }
}

core::SessionOptions Diagnoser::sessionOptions() const {
  core::SessionOptions o;
  o.patterns = opts_.patterns;
  o.signature_interval = opts_.signature_interval;
  o.final_unload = true;
  if (!opts_.transition) {
    // The dictionary models one (staged) capture per pattern; run the
    // die the same way so per-pattern rows line up cycle-for-cycle.
    bist::AtSpeedTimingConfig timing = core_->config.timing;
    timing.double_capture = false;
    o.timing_override = timing;
  }
  return o;
}

core::SessionResult Diagnoser::runSession(const Netlist& die,
                                          const core::SessionOptions& o) {
  core::BistSession session(*core_, die);
  return session.run(o);
}

const core::SessionResult& Diagnoser::goldenRun() {
  if (!golden_) golden_ = runSession(core_->netlist, sessionOptions());
  return *golden_;
}

Syndrome Diagnoser::extractSyndrome(
    const core::SessionResult& golden,
    const core::SessionResult& failing) const {
  Syndrome s;
  s.patterns = opts_.patterns;
  s.signature_interval = golden.checkpoints.empty()
                             ? opts_.signature_interval
                             : golden.checkpoints[0].patterns_done;
  const size_t n_checkpoints = golden.checkpoints.size();
  s.dirty_windows.assign(n_checkpoints + 1, 0);
  s.failing_domains.assign(core_->domain_bist.size(), 0);

  const int64_t interval = s.signature_interval;
  const uint64_t shift_cycles =
      static_cast<uint64_t>(core_->shiftCyclesPerPattern());

  for (size_t i = 0; i < core_->domain_bist.size(); ++i) {
    const bist::WideMisr algebra(core_->domain_bist[i].odc.misr_length);
    // One matrix power per domain; checkpoints share the step size.
    const bist::WideMisr::Advancer step =
        algebra.advancer(static_cast<uint64_t>(interval) * shift_cycles);
    std::vector<uint64_t> diff_prev(algebra.numSegments(), 0);
    bool domain_failed = false;
    for (size_t c = 0; c < n_checkpoints; ++c) {
      const std::vector<uint64_t> diff =
          xorWords(failing.checkpoints[c].domain_words[i],
                   golden.checkpoints[c].domain_words[i]);
      if (diff != step.apply(diff_prev)) {
        s.dirty_windows[c] = 1;
      }
      if (anyBit(diff)) domain_failed = true;
      diff_prev = diff;
    }
    // Final signature: the remaining patterns plus the unload window.
    const int64_t covered = static_cast<int64_t>(n_checkpoints) * interval;
    const uint64_t tail_cycles =
        static_cast<uint64_t>(opts_.patterns - covered) * shift_cycles +
        shift_cycles;
    const std::vector<uint64_t> diff_final =
        xorWords(failing.signature_words[i], golden.signature_words[i]);
    if (diff_final != algebra.advance(diff_prev, tail_cycles)) {
      s.dirty_windows[n_checkpoints] = 1;
    }
    if (anyBit(diff_final)) domain_failed = true;
    if (domain_failed) s.failing_domains[i] = 1;
  }
  return s;
}

int64_t Diagnoser::binarySearchFirstFail(const Netlist& bad_die, int64_t lo,
                                         int64_t hi, size_t& session_runs) {
  // fail(p): does truncating the session after pattern p already show a
  // signature mismatch? Monotone in p (MISR errors persist), so the
  // first failing pattern is the boundary.
  core::SessionOptions o = sessionOptions();
  o.signature_interval = 0;
  auto fails = [&](int64_t p) {
    o.patterns = p + 1;
    const core::SessionResult g = runSession(core_->netlist, o);
    const core::SessionResult b = runSession(bad_die, o);
    session_runs += 2;
    return g.signature_words != b.signature_words;
  };
  while (lo < hi) {
    const int64_t mid = lo + (hi - lo) / 2;
    if (fails(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

void Diagnoser::ensureDictionary() {
  if (!dict_) {
    dict_ = buildResponseDictionary(*core_, faults_, opts_.patterns,
                                    opts_.threads, opts_.transition,
                                    &dict_stats_, opts_.min_faults_per_thread);
  }
}

const ResponseDictionary& Diagnoser::dictionary() {
  ensureDictionary();
  return *dict_;
}

uint32_t Diagnoser::domainReachMask(const fault::Fault& f) const {
  const Netlist& nl = core_->netlist;
  uint32_t mask = 0;
  for (size_t i = 0; i < domain_reach_.size(); ++i) {
    if (domain_reach_[i][f.gate.v] != 0) mask |= uint32_t{1} << i;
  }
  const Gate& g = nl.gate(f.gate);
  if (f.pin != fault::kOutputPin && g.kind == CellKind::kDff) {
    // Capture-pin fault: also observed directly at the cell's own chain.
    const dft::ScanChain* chain = core_->scan.chainOf(f.gate);
    if (chain != nullptr) {
      const size_t chain_index =
          static_cast<size_t>(chain - core_->scan.chains.data());
      for (size_t i = 0; i < core_->domain_bist.size(); ++i) {
        const auto& idx = core_->domain_bist[i].chain_indices;
        if (std::find(idx.begin(), idx.end(), chain_index) != idx.end()) {
          mask |= uint32_t{1} << i;
        }
      }
    }
  }
  return mask;
}

void Diagnoser::matchSyndrome(const Syndrome& syndrome, Diagnosis& out) {
  ensureDictionary();
  const ResponseDictionary& dict = *dict_;
  const size_t num_windows = syndrome.numWindows();

  // Observed failing sets, in matchable form.
  const bool pattern_level = !syndrome.failing_patterns.empty();
  std::vector<uint64_t> obs_bits;
  std::vector<uint8_t> obs_windows(num_windows, 0);
  if (pattern_level) {
    obs_bits.assign(static_cast<size_t>((opts_.patterns + 63) / 64), 0);
    for (int64_t p : syndrome.failing_patterns) {
      obs_bits[static_cast<size_t>(p / 64)] |= uint64_t{1} << (p % 64);
    }
  } else {
    obs_windows.assign(syndrome.dirty_windows.begin(),
                       syndrome.dirty_windows.end());
  }
  uint32_t failing_domain_mask = 0;
  for (size_t i = 0; i < syndrome.failing_domains.size(); ++i) {
    if (syndrome.failing_domains[i] != 0) {
      failing_domain_mask |= uint32_t{1} << i;
    }
  }

  std::vector<Candidate> all;
  std::vector<uint8_t> sim_windows(num_windows, 0);
  for (size_t fi = 0; fi < dict.faults(); ++fi) {
    const int64_t first = dict.firstDetection(fi);
    if (first < 0) continue;  // silent fault: cannot explain a failure
    const fault::Fault& f = faults_.record(fi).fault;
    // A single fault must be able to corrupt every failing domain.
    if (failing_domain_mask != 0 &&
        (domainReachMask(f) & failing_domain_mask) != failing_domain_mask) {
      continue;
    }

    size_t inter = 0;
    size_t uni = 0;
    if (pattern_level) {
      const auto r = dict.row(fi);
      for (size_t w = 0; w < r.size(); ++w) {
        inter += static_cast<size_t>(std::popcount(r[w] & obs_bits[w]));
        uni += static_cast<size_t>(std::popcount(r[w] | obs_bits[w]));
      }
    } else {
      std::fill(sim_windows.begin(), sim_windows.end(), 0);
      const auto r = dict.row(fi);
      for (size_t w = 0; w < r.size(); ++w) {
        uint64_t bits = r[w];
        while (bits != 0) {
          const int64_t p =
              static_cast<int64_t>(w) * 64 + std::countr_zero(bits);
          sim_windows[static_cast<size_t>(windowOfPattern(
              p, syndrome.signature_interval, num_windows))] = 1;
          bits &= bits - 1;
        }
      }
      for (size_t w = 0; w < num_windows; ++w) {
        inter += (sim_windows[w] != 0 && obs_windows[w] != 0) ? 1 : 0;
        uni += (sim_windows[w] != 0 || obs_windows[w] != 0) ? 1 : 0;
      }
    }
    if (inter == 0) continue;  // no overlap with the observed failure

    Candidate c;
    c.fault_index = fi;
    c.fault = f;
    c.description = f.describe(core_->netlist);
    c.score = static_cast<double>(inter) / static_cast<double>(uni);
    c.exact_match = inter == uni;
    c.first_fail_match = syndrome.first_failing_pattern >= 0 &&
                         first == syndrome.first_failing_pattern;
    all.push_back(std::move(c));
  }

  std::sort(all.begin(), all.end(), [](const Candidate& a,
                                       const Candidate& b) {
    if (a.exact_match != b.exact_match) return a.exact_match;
    if (a.first_fail_match != b.first_fail_match) return a.first_fail_match;
    if (a.score != b.score) return a.score > b.score;
    return a.fault_index < b.fault_index;
  });

  out.tied_top = 0;
  if (!all.empty()) {
    const Candidate& top = all.front();
    for (const Candidate& c : all) {
      if (c.exact_match == top.exact_match &&
          c.first_fail_match == top.first_fail_match &&
          c.score == top.score) {
        ++out.tied_top;
      }
    }
  }
  if (all.size() > opts_.max_candidates) all.resize(opts_.max_candidates);
  out.candidates = std::move(all);
  out.faults_simulated = dict.faults();
  out.dictionary_seconds = dict_stats_.seconds;
  out.dictionary_bytes = dict_stats_.bytes;
}

void Diagnoser::confirmCandidates(const core::SessionResult& observed,
                                  Diagnosis& out) {
  if (opts_.transition) return;  // transition faults cannot be hardwired
  const size_t n = std::min(opts_.confirm_top, out.candidates.size());
  const core::SessionOptions o = sessionOptions();
  for (size_t k = 0; k < n; ++k) {
    Candidate& c = out.candidates[k];
    Netlist die = core_->netlist;
    try {
      fault::injectStuckAt(die, c.fault);
    } catch (const std::invalid_argument&) {
      continue;  // un-injectable site (e.g. X-source cone)
    }
    const core::SessionResult replay = runSession(die, o);
    ++out.session_runs;
    c.confirmed = replay.signature_words == observed.signature_words &&
                  replay.checkpoints == observed.checkpoints;
  }
  std::stable_sort(out.candidates.begin(), out.candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.confirmed && !b.confirmed;
                   });
}

Diagnosis Diagnoser::diagnoseDie(const Netlist& bad_die) {
  const auto t0 = std::chrono::steady_clock::now();
  Diagnosis d;

  const bool golden_cached = golden_.has_value();
  const core::SessionResult& golden = goldenRun();
  const core::SessionResult failing = runSession(bad_die, sessionOptions());
  d.session_runs = golden_cached ? 1 : 2;

  d.syndrome = extractSyndrome(golden, failing);
  d.failed = d.syndrome.anyDirty();
  if (!d.failed) {
    d.total_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return d;  // the die passed; nothing to diagnose
  }

  if (opts_.exact_pattern_replay) {
    // Per-pattern checkpoints turn every window into a single capture:
    // dirty window w (w >= 1) means pattern w-1 failed.
    core::SessionOptions o = sessionOptions();
    o.signature_interval = 1;
    const core::SessionResult g1 = runSession(core_->netlist, o);
    const core::SessionResult b1 = runSession(bad_die, o);
    d.session_runs += 2;
    const Syndrome fine = extractSyndrome(g1, b1);
    for (size_t w = 1; w < fine.dirty_windows.size(); ++w) {
      if (fine.dirty_windows[w] != 0) {
        d.syndrome.failing_patterns.push_back(static_cast<int64_t>(w) - 1);
      }
    }
  }

  if (!d.syndrome.failing_patterns.empty()) {
    // The exact replay already recovered every failing pattern; the
    // binary search would only re-measure its minimum.
    d.syndrome.first_failing_pattern = d.syndrome.failing_patterns.front();
  } else if (opts_.locate_first_fail) {
    // The first failing pattern lies in the first dirty window; pin it
    // with O(log window) truncated re-runs.
    size_t first_dirty = 0;
    while (d.syndrome.dirty_windows[first_dirty] == 0) ++first_dirty;
    const int64_t interval = d.syndrome.signature_interval;
    const int64_t lo = std::max<int64_t>(
        0, static_cast<int64_t>(first_dirty) * interval - 1);
    const int64_t hi =
        first_dirty + 1 < d.syndrome.dirty_windows.size()
            ? std::min(opts_.patterns - 1,
                       (static_cast<int64_t>(first_dirty) + 1) * interval - 2)
            : opts_.patterns - 1;
    d.syndrome.first_failing_pattern =
        binarySearchFirstFail(bad_die, lo, hi, d.session_runs);
  }

  matchSyndrome(d.syndrome, d);
  confirmCandidates(failing, d);

  d.total_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return d;
}

Diagnosis Diagnoser::diagnoseSyndrome(const Syndrome& syndrome) {
  // External (e.g. ATE-sourced) syndromes are untrusted: everything the
  // matcher indexes with must line up with this Diagnoser's options.
  if (syndrome.patterns != opts_.patterns) {
    throw std::invalid_argument(
        "diagnoseSyndrome: syndrome pattern count does not match options");
  }
  for (int64_t p : syndrome.failing_patterns) {
    if (p < 0 || p >= opts_.patterns) {
      throw std::invalid_argument(
          "diagnoseSyndrome: failing pattern index out of range");
    }
  }
  if (syndrome.failing_patterns.empty() &&
      (syndrome.signature_interval <= 0 ||
       syndrome.dirty_windows.size() != syndrome.numWindows())) {
    throw std::invalid_argument(
        "diagnoseSyndrome: dirty_windows must cover every window when no "
        "failing-pattern set is given");
  }
  if (!syndrome.failing_domains.empty() &&
      syndrome.failing_domains.size() != core_->domain_bist.size()) {
    throw std::invalid_argument(
        "diagnoseSyndrome: failing_domains size does not match the core");
  }
  const auto t0 = std::chrono::steady_clock::now();
  Diagnosis d;
  d.syndrome = syndrome;
  d.failed = syndrome.anyDirty() || !syndrome.failing_patterns.empty();
  if (d.failed) matchSyndrome(syndrome, d);
  d.total_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return d;
}

Syndrome Diagnoser::syndromeForFault(size_t fault_index) {
  ensureDictionary();
  Syndrome s;
  s.patterns = opts_.patterns;
  s.signature_interval = opts_.signature_interval;
  s.dirty_windows.assign(s.numWindows(), 0);
  s.failing_patterns = dict_->failingPatterns(fault_index);
  s.first_failing_pattern = dict_->firstDetection(fault_index);
  for (int64_t p : s.failing_patterns) {
    s.dirty_windows[static_cast<size_t>(
        windowOfPattern(p, s.signature_interval, s.numWindows()))] = 1;
  }
  return s;
}

std::string renderDiagnosisReport(const Diagnosis& d) {
  std::ostringstream os;
  os << "=== diagnosis report ===\n";
  if (!d.failed) {
    os << "verdict        : PASS (signatures match; nothing to diagnose)\n";
    return os.str();
  }
  size_t dirty = 0;
  for (uint8_t w : d.syndrome.dirty_windows) dirty += w != 0 ? 1 : 0;
  os << "verdict        : FAIL\n";
  os << "windows        : " << dirty << "/" << d.syndrome.dirty_windows.size()
     << " dirty (interval " << d.syndrome.signature_interval << ", "
     << d.syndrome.patterns << " patterns)\n";
  if (d.syndrome.first_failing_pattern >= 0) {
    os << "first failing  : pattern " << d.syndrome.first_failing_pattern
       << "\n";
  }
  if (!d.syndrome.failing_patterns.empty()) {
    os << "failing count  : " << d.syndrome.failing_patterns.size()
       << " patterns (exact replay)\n";
  }
  if (!d.syndrome.failing_domains.empty()) {
    size_t failing = 0;
    for (uint8_t f : d.syndrome.failing_domains) failing += f != 0 ? 1 : 0;
    os << "failing domains: " << failing << " of "
       << d.syndrome.failing_domains.size() << "\n";
  }
  os << "dictionary     : " << d.faults_simulated << " faults x "
     << d.syndrome.patterns << " patterns, " << d.dictionary_bytes / 1024
     << " KiB\n";
  os << "effort         : " << d.session_runs << " session runs, "
     << "resolution " << d.tied_top << " tied at top\n";
  os << "rank score  flags                   fault\n";
  for (size_t i = 0; i < d.candidates.size(); ++i) {
    const Candidate& c = d.candidates[i];
    std::string flags;
    if (c.confirmed) flags += "confirmed ";
    if (c.exact_match) flags += "exact ";
    if (c.first_fail_match) flags += "first ";
    if (flags.empty()) flags = "-";
    char line[160];
    std::snprintf(line, sizeof(line), "%4zu %.3f  %-22s  %s\n", i + 1,
                  c.score, flags.c_str(), c.description.c_str());
    os << line;
  }
  return os.str();
}

}  // namespace lbist::diag
