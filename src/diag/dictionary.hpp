// Response dictionaries for signature-based fault diagnosis.
//
// A dictionary row is the per-pattern detection bitmap of one fault over
// an n-pattern diagnostic session, recorded at the MISR observation set
// (scan-cell D drivers — the only responses that reach the signature
// path; primary outputs are excluded unless wrapped into scan cells).
// Rows are produced by the PPSFP fault simulator's detection-recording
// mode with dropping disabled, fed PRPG-exact scan states, so pattern p
// in a row is the same stimulus the cycle-accurate BistSession shifts in
// as pattern p.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/architect.hpp"
#include "fault/fault.hpp"
#include "sim/lane.hpp"

namespace lbist::diag {

/// Packed per-fault, per-pattern detection bitmaps (one row per fault,
/// 64 patterns per word) — the MATCH stage's lookup structure.
class ResponseDictionary {
 public:
  /// Allocates an all-zero n_faults x n_patterns bitmap.
  ResponseDictionary(size_t n_faults, int64_t n_patterns);

  /// Row count (one per fault in the diagnosed universe).
  [[nodiscard]] size_t faults() const { return n_faults_; }
  /// Patterns covered by each row.
  [[nodiscard]] int64_t patterns() const { return n_patterns_; }

  /// ORs a 64-lane detection mask into `fault`'s row (lane l = pattern
  /// pattern_base + l).
  void recordMask(size_t fault, int64_t pattern_base, uint64_t mask);

  /// ORs a multi-word lane-block detection mask into `fault`'s row
  /// (lane l = pattern pattern_base + l); words past the row end are
  /// clamped, so a partial final block records safely.
  void recordMask(size_t fault, int64_t pattern_base, sim::LaneMask mask);

  /// True when `fault`'s response differs from golden at `pattern`.
  [[nodiscard]] bool detects(size_t fault, int64_t pattern) const;

  /// The packed row, 64 patterns per word, LSB-first.
  [[nodiscard]] std::span<const uint64_t> row(size_t fault) const {
    return {bits_.data() + fault * words_per_fault_, words_per_fault_};
  }

  /// First pattern detecting `fault`, or -1 if the row is empty.
  [[nodiscard]] int64_t firstDetection(size_t fault) const;

  /// Number of patterns detecting `fault` (its row's popcount).
  [[nodiscard]] size_t detectionCount(size_t fault) const;

  /// The row expanded to an ascending pattern-index list.
  [[nodiscard]] std::vector<int64_t> failingPatterns(size_t fault) const;

  /// Total dictionary storage in bytes (the memory side of the
  /// interval-signature memory/resolution trade-off).
  [[nodiscard]] size_t bytes() const {
    return bits_.size() * sizeof(uint64_t);
  }

 private:
  size_t n_faults_;
  int64_t n_patterns_;
  size_t words_per_fault_;
  std::vector<uint64_t> bits_;
};

/// Cost summary of one buildResponseDictionary call (bench/report
/// fodder; `seconds` is wall-clock, the rest deterministic).
struct DictionaryBuildStats {
  int64_t patterns = 0;
  size_t faults = 0;
  size_t faults_with_detections = 0;
  size_t bytes = 0;
  double seconds = 0.0;
};

/// Observation set seen by the MISRs: D drivers of scan cells only.
/// Unwrapped primary outputs never feed the signature path, so they are
/// deliberately excluded (contrast fault::defaultObservationSet).
[[nodiscard]] std::vector<GateId> misrObservationSet(const Netlist& nl);

/// Builds the full dictionary for `faults` over `n_patterns` PRPG-exact
/// patterns with `threads` fault-simulation workers, simulating
/// `lane_words`-wide lane blocks (64 * lane_words patterns per pass).
/// Dropping is disabled so every row is complete; the recording stream
/// comes from the simulator's serial merge, so the result is
/// bit-identical for every thread count AND every lane width (rows are
/// full per-pattern bitmaps — block-boundary placement cannot show).
/// Faults with no structural path to the MISR observation set are
/// marked untestable in `faults` and left empty.
[[nodiscard]] ResponseDictionary buildResponseDictionary(
    const core::BistReadyCore& core, fault::FaultList& faults,
    int64_t n_patterns, uint32_t threads = 1, bool transition = false,
    DictionaryBuildStats* stats = nullptr,
    uint32_t min_faults_per_thread = 256, uint32_t lane_words = 1);

}  // namespace lbist::diag
