#include "soc/chip.hpp"

#include <algorithm>
#include <stdexcept>

#include "bist/lfsr.hpp"
#include "core/session.hpp"
#include "gen/ipcore.hpp"

namespace lbist::soc {

Chip::Chip(std::string name)
    : name_(std::move(name)), tap_(kIrLength, kIdcode) {
  select_reg_ = std::make_unique<jtag::CallbackRegister>(
      kCoreSelectBits,
      [this] {
        std::vector<uint8_t> bits(kCoreSelectBits, 0);
        for (size_t b = 0; b < kCoreSelectBits; ++b) {
          bits[b] = static_cast<uint8_t>((selected_ >> b) & 1u);
        }
        return bits;
      },
      [this](const std::vector<uint8_t>& bits) {
        size_t idx = 0;
        for (size_t b = 0; b < bits.size(); ++b) {
          if (bits[b] != 0) idx |= size_t{1} << b;
        }
        // Out-of-range addresses are kept as written: the BIST opcodes
        // then forward to nothing (1-bit bypass behaviour), so a
        // mis-addressed host sees garbage instead of silently testing
        // the wrong core.
        selected_ = idx;
      });

  auto forward = [this](uint32_t opcode) {
    return std::make_unique<jtag::ForwardingRegister>(
        [this, opcode] { return selectedCoreRegister(opcode); });
  };
  ctrl_fwd_ = forward(kOpcodeCtrl);
  status_fwd_ = forward(kOpcodeStatus);
  seed_fwd_ = forward(kOpcodeSeed);
  sig_fwd_ = forward(kOpcodeSignature);

  tap_.bindInstruction(kOpcodeCtrl, "BIST_CTRL", ctrl_fwd_.get());
  tap_.bindInstruction(kOpcodeStatus, "BIST_STATUS", status_fwd_.get());
  tap_.bindInstruction(kOpcodeSeed, "PRPG_SEED", seed_fwd_.get());
  tap_.bindInstruction(kOpcodeSignature, "MISR_SIG", sig_fwd_.get());
  tap_.bindInstruction(kOpcodeCoreSelect, "CORE_SELECT", select_reg_.get());
}

jtag::DataRegister* Chip::selectedCoreRegister(uint32_t opcode) {
  if (selected_ >= slots_.size()) return nullptr;
  return slots_[selected_]->top->tap().boundRegister(opcode);
}

size_t Chip::addCore(std::string name, core::BistReadyCore ready) {
  if (slots_.size() >= (size_t{1} << kCoreSelectBits)) {
    throw std::invalid_argument("CORE_SELECT address space exhausted");
  }
  for (const std::unique_ptr<Slot>& s : slots_) {
    if (s->name == name) {
      throw std::invalid_argument("duplicate core name '" + name +
                                  "' (names key campaign checkpoints)");
    }
  }
  auto slot = std::make_unique<Slot>();
  slot->name = std::move(name);
  slot->ready = std::move(ready);
  slot->die = slot->ready.netlist;  // good die until someone injects
  slot->top = std::make_unique<core::LbistTop>(slot->ready, slot->die);
  slots_.push_back(std::move(slot));
  return slots_.size() - 1;
}

const std::string& Chip::coreName(size_t i) const { return slots_.at(i)->name; }

const core::BistReadyCore& Chip::core(size_t i) const {
  return slots_.at(i)->ready;
}

Netlist& Chip::die(size_t i) { return slots_.at(i)->die; }

const Netlist& Chip::die(size_t i) const { return slots_.at(i)->die; }

core::LbistTop& Chip::top(size_t i) { return *slots_.at(i)->top; }

void Chip::characterizeGolden(int64_t patterns) {
  for (const std::unique_ptr<Slot>& slot : slots_) {
    core::BistSession session(slot->ready, slot->ready.netlist);
    core::SessionOptions opts;
    opts.patterns = patterns;
    const core::SessionResult res = session.run(opts);
    slot->golden = res.signatures;
    slot->golden_words = res.signature_words;
    slot->top->setGoldenSignatures(slot->golden);
  }
  golden_patterns_ = patterns;
}

std::span<const std::string> Chip::golden(size_t i) const {
  return slots_.at(i)->golden;
}

std::vector<std::vector<uint8_t>> Chip::goldenSignatureBits(size_t i) const {
  const Slot& s = *slots_.at(i);
  std::vector<std::vector<uint8_t>> per_domain;
  for (size_t d = 0; d < s.ready.domain_bist.size(); ++d) {
    // Same words-to-bits path as LbistTop's SIGNATURE register.
    per_domain.push_back(bist::WideMisr::unpackBits(
        d < s.golden_words.size() ? s.golden_words[d]
                                  : std::span<const uint64_t>{},
        s.ready.domain_bist[d].odc.misr_length));
  }
  return per_domain;
}

size_t Chip::seedBits(size_t i) const {
  const Slot& s = *slots_.at(i);
  return s.ready.domain_bist.size() *
         static_cast<size_t>(s.ready.config.prpg_length);
}

size_t Chip::signatureBits(size_t i) const {
  const Slot& s = *slots_.at(i);
  size_t bits = 0;
  for (const core::DomainBist& db : s.ready.domain_bist) {
    bits += static_cast<size_t>(db.odc.misr_length);
  }
  return bits;
}

ChipTester::ChipTester(Chip& chip)
    : chip_(&chip), driver_(chip.tap()), core_tcks_(chip.numCores(), 0) {}

void ChipTester::charge(uint64_t before, bool to_core) {
  const uint64_t spent = driver_.tckCount() - before;
  if (to_core && selected_once_) {
    const size_t idx = chip_->selectedCore();
    if (idx >= core_tcks_.size()) core_tcks_.resize(idx + 1, 0);
    core_tcks_[idx] += spent;
  } else {
    overhead_tcks_ += spent;
  }
}

void ChipTester::reset() {
  const uint64_t t0 = driver_.tckCount();
  driver_.reset();
  charge(t0, false);
}

void ChipTester::selectCore(size_t index) {
  if (index >= chip_->numCores()) {
    throw std::invalid_argument("core index out of range");
  }
  const uint64_t t0 = driver_.tckCount();
  std::vector<uint8_t> bits(Chip::kCoreSelectBits, 0);
  for (size_t b = 0; b < Chip::kCoreSelectBits; ++b) {
    bits[b] = static_cast<uint8_t>((index >> b) & 1u);
  }
  driver_.loadInstruction(Chip::kOpcodeCoreSelect);
  driver_.shiftData(bits);
  // The select shift works for the core being selected, so the charge
  // lands on the *new* selection.
  selected_once_ = true;
  charge(t0, true);
}

void ChipTester::loadSeeds(std::span<const uint64_t> seeds) {
  const uint64_t t0 = driver_.tckCount();
  const size_t core = chip_->selectedCore();
  if (seeds.size() != chip_->core(core).domain_bist.size()) {
    // A missing seed would silently zero that domain's PRPG and fail a
    // good die against the golden characterization.
    throw std::invalid_argument("one seed per clock domain required");
  }
  const auto len =
      static_cast<size_t>(chip_->core(core).config.prpg_length);
  std::vector<uint8_t> bits(chip_->seedBits(core), 0);
  for (size_t i = 0; i < seeds.size() && i < bits.size() / len; ++i) {
    for (size_t b = 0; b < len; ++b) {
      bits[i * len + b] = static_cast<uint8_t>((seeds[i] >> b) & 1u);
    }
  }
  driver_.loadInstruction(Chip::kOpcodeSeed);
  driver_.shiftData(bits);
  charge(t0, true);
}

void ChipTester::start(int64_t patterns) {
  const uint64_t t0 = driver_.tckCount();
  std::vector<uint8_t> ctrl(core::LbistTop::kCtrlBits, 0);
  ctrl[0] = 1;
  for (int b = 0; b < 32; ++b) {
    ctrl[static_cast<size_t>(b) + 1] =
        static_cast<uint8_t>((patterns >> b) & 1);
  }
  driver_.loadInstruction(Chip::kOpcodeCtrl);
  driver_.shiftData(ctrl);
  charge(t0, true);
}

ChipTester::Status ChipTester::readStatus() {
  const uint64_t t0 = driver_.tckCount();
  driver_.loadInstruction(Chip::kOpcodeStatus);
  const auto bits = driver_.shiftData({0, 0});
  charge(t0, true);
  return Status{bits[0] != 0, bits[1] != 0};
}

std::vector<std::vector<uint8_t>> ChipTester::readSignature() {
  const uint64_t t0 = driver_.tckCount();
  const size_t core = chip_->selectedCore();
  driver_.loadInstruction(Chip::kOpcodeSignature);
  const auto bits =
      driver_.shiftData(std::vector<uint8_t>(chip_->signatureBits(core), 0));
  charge(t0, true);

  std::vector<std::vector<uint8_t>> per_domain;
  size_t offset = 0;
  for (const core::DomainBist& db : chip_->core(core).domain_bist) {
    const auto len = static_cast<size_t>(db.odc.misr_length);
    per_domain.emplace_back(bits.begin() + static_cast<long>(offset),
                            bits.begin() + static_cast<long>(offset + len));
    offset += len;
  }
  return per_domain;
}

void appendGeneratedCores(Chip& chip, const gen::SocSpec& spec,
                          const core::LbistConfig& base) {
  for (const gen::SocCorePlan& plan : gen::generateSocPlan(spec)) {
    core::LbistConfig cfg = base;
    cfg.num_chains = plan.num_chains;
    cfg.test_points = plan.test_points;
    chip.addCore(plan.name, core::buildBistReadyCore(
                                gen::generateIpCore(plan.core), cfg));
  }
}

}  // namespace lbist::soc
