// soc::CampaignRunner — executes a TestSchedule against a Chip.
//
// Groups run in schedule order; within a group every core's BIST session
// is an independent job on core::ThreadPool (sessions share nothing —
// each job owns its BistSession, simulator and optional coverage flow),
// and a serial in-schedule-order merge assembles per-core pass/fail,
// signatures, and coverage. The merge is the only writer of results and
// of the checkpoint file, so campaign output — including the checkpoint
// bytes — is bit-identical for 1/2/4/0 worker threads.
//
// Checkpoint/resume: with CampaignOptions::checkpoint_path set, the
// merge appends one line per completed core. A later run with
// resume = true validates the header (chip name, pattern count, core
// count), skips every recorded core, and appends only the remainder —
// so a killed chip campaign resumes without re-running finished cores
// and converges to the same results and checkpoint bytes as an
// uninterrupted run.
//
// Failure handling (ARCHITECTURE.md contract 6): the checkpoint format
// is versioned and CRC-protected per record, rewrites are atomic
// (temp + fsync + rename), and recovery truncates to the longest valid
// record prefix, quarantining the corrupt original as `<path>.corrupt`.
// Core-session jobs run under a deterministic RetryPolicy and a
// simulated watchdog budget: a job that throws or hangs is retried
// within budget and otherwise recorded failed-with-reason
// (CoreRunResult::error/error_detail) while the campaign completes the
// remaining cores. Failed cores are never checkpointed, so a resume
// re-runs exactly them and still converges to clean-run bytes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "robust/robust.hpp"
#include "soc/chip.hpp"
#include "soc/schedule.hpp"

namespace lbist::soc {

/// Campaign execution knobs.
struct CampaignOptions {
  /// Worker threads for in-group core sessions (0 = hardware
  /// concurrency). Results are bit-identical for every value.
  uint32_t threads = 1;
  /// Also measure each core's stuck-at fault coverage over the session's
  /// PRPG patterns (core::CoverageFlow). Costs one fault-simulation
  /// campaign per core.
  bool measure_coverage = false;
  /// With measure_coverage: follow the random phase with the
  /// deterministic top-up flow, SAT escalation on, so the recorded
  /// coverage is the full-flow number and every hard-tail fault ends as
  /// a cube or a redundancy proof (CoreRunResult::redundant). Changes
  /// the checkpoint header, so topup and non-topup campaigns cannot be
  /// mixed by resume. No-op without measure_coverage.
  bool topup_coverage = false;
  /// Checkpoint file path; empty disables checkpointing.
  std::string checkpoint_path;
  /// Resume from an existing checkpoint file instead of truncating it.
  bool resume = false;
  /// Stop after this many groups (-1 = run all). The campaign reports
  /// complete = false; a later resume run finishes the remainder — the
  /// hook the kill-and-resume tests use.
  int64_t max_groups = -1;
  /// Heartbeat stream: after every merged group the runner writes one
  /// progress line (group index, cores run/resumed, failures, wall
  /// seconds, throughput in simulated tck/s, and an ETA extrapolated
  /// from the remaining scheduled tcks). nullptr disables.
  /// Observability only — never read back, so it cannot affect results
  /// (ARCHITECTURE.md contract 5).
  std::ostream* progress = nullptr;
  /// Retry budget for failing core-session jobs. Backoff is counted in
  /// simulated ticks (obs counter soc.backoff_ticks), never slept, so
  /// retried campaigns stay bit-exact.
  robust::RetryPolicy retry;
  /// Simulated watchdog budget per core-session attempt. A hung session
  /// (only injectable — real sessions are finite) is charged the whole
  /// budget and recorded BudgetExceeded without retry.
  uint64_t watchdog_budget_ticks = 1024;
};

/// One core's campaign outcome.
struct CoreRunResult {
  std::string name;
  size_t core_index = 0;
  bool pass = false;
  std::vector<std::string> signatures;  // per domain, hex
  uint64_t tcks = 0;                    // session length (sessionTcks)
  double coverage_percent = -1.0;       // -1 when not measured
  /// Faults the top-up pass proved redundant (SAT UNSAT); -1 when the
  /// campaign ran without CampaignOptions::topup_coverage.
  int64_t redundant = -1;
  bool from_checkpoint = false;
  /// kOk when the session executed (pass/fail is the BIST verdict);
  /// otherwise the infrastructure failure that kept it from executing
  /// (JobFailed: exception; BudgetExceeded: watchdog). Failed-with-
  /// reason cores are not checkpointed and re-run on resume.
  robust::ErrorCode error = robust::ErrorCode::kOk;
  /// Human-readable reason when error != kOk.
  std::string error_detail;
  /// Attempts consumed (1 = first try succeeded). Run history, like
  /// from_checkpoint: excluded from result-equality comparisons.
  uint32_t attempts = 1;
};

/// Whole-campaign outcome, merged in schedule order.
struct CampaignResult {
  std::vector<CoreRunResult> cores;  // group order, in-group member order
  size_t executed_groups = 0;
  uint64_t total_tcks = 0;  // scheduled duration of the executed groups
  size_t failures = 0;
  size_t resumed_cores = 0;
  bool complete = false;
  /// Cores whose error != kOk (infrastructure failures, a subset of
  /// `failures`).
  size_t job_failures = 0;
  /// Corrupt/torn checkpoint records dropped during resume recovery.
  size_t dropped_records = 0;
  /// True when recovery quarantined a corrupt checkpoint as
  /// `<checkpoint_path>.corrupt`.
  bool checkpoint_quarantined = false;
  /// First checkpoint-append failure, if any. The campaign degrades
  /// gracefully — it keeps running without checkpointing — and records
  /// the failure here instead of aborting mid-campaign.
  robust::Status checkpoint_status;
};

/// See file comment.
class CampaignRunner {
 public:
  /// Binds a chip, a schedule over that chip's cores, and the session
  /// every core runs — pass the same options the schedule was built
  /// with (buildChipSchedule's `session`), or the TCK/power accounting
  /// the schedule promises will not match what executes. The chip must
  /// be golden-characterized (Chip::characterizeGolden) before run().
  CampaignRunner(Chip& chip, const TestSchedule& schedule,
                 core::SessionOptions session);

  /// Executes the schedule. Error statuses: kInvalidArgument when the
  /// session pattern count disagrees with the chip's golden
  /// characterization (the on-chip compare would be meaningless);
  /// kCorruptCheckpoint when a resume checkpoint's intact header names
  /// a different campaign (chip, pattern count, or coverage mode —
  /// resuming would silently mix campaigns); kIoError when the
  /// checkpoint cannot be read or (re)written at campaign start.
  /// Per-core infrastructure failures do NOT fail the campaign: they
  /// come back as CoreRunResult::error with the campaign complete.
  [[nodiscard]] robust::Result<CampaignResult> tryRun(
      const CampaignOptions& opts);

  /// Throwing wrapper over tryRun() for existing callers: throws
  /// std::invalid_argument with the status message on error.
  [[nodiscard]] CampaignResult run(const CampaignOptions& opts);

 private:
  Chip* chip_;
  const TestSchedule* schedule_;
  core::SessionOptions session_;
};

/// Estimates the sessions a chip-level schedule packs: one CoreSession
/// per core, TCKs from sessionTcks and power from PowerModel::peak().
/// Callers choosing a budget relative to the chip's demand combine this
/// with peakSessionPower / totalSessionPower and pack with Scheduler.
[[nodiscard]] std::vector<CoreSession> buildCoreSessions(
    const Chip& chip, const core::SessionOptions& session,
    int64_t power_sample_patterns = 128);

/// Convenience: buildCoreSessions packed with Scheduler under
/// `power_budget`. `session` supplies the pattern count and timing every
/// core session will run with; `power_sample_patterns` sizes the
/// activity sample.
[[nodiscard]] TestSchedule buildChipSchedule(
    const Chip& chip, double power_budget,
    const core::SessionOptions& session,
    int64_t power_sample_patterns = 128);

}  // namespace lbist::soc
