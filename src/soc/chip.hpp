// soc::Chip — an assembly of named BISTed IP cores behind one chip TAP.
//
// The paper's section 1 scenario at chip scale: every embedded core
// keeps its own LbistTop (CTRL/STATUS/SEED/SIGNATURE registers), and the
// chip-level TAP adds a CORE_SELECT register plus jtag::ForwardingRegister
// bindings, so one TapDriver on the chip pins reaches whichever core is
// selected — seeds in, Start, poll Finish, signatures out — without any
// core-internal test access routed to the pads. ChipTester wraps the
// host-side sequences and keeps per-core TCK accounting.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/architect.hpp"
#include "core/lbist_top.hpp"
#include "gen/soc.hpp"
#include "jtag/tap.hpp"

namespace lbist::soc {

/// The chip under test: N cores (each a BistReadyCore plus the die that
/// instance got from fab) behind a single chip-level TapController.
/// Non-movable: the TAP registers capture `this`.
class Chip {
 public:
  /// Chip-level IR geometry and opcodes. The four BIST opcodes carry the
  /// same numeric values as core::LbistTop's, so a host that knows the
  /// single-core protocol only learns CORE_SELECT.
  static constexpr uint32_t kIrLength = core::LbistTop::kIrLength;
  /// Forwarded to the selected core's BIST_CTRL register.
  static constexpr uint32_t kOpcodeCtrl = core::LbistTop::kOpcodeCtrl;
  /// Forwarded to the selected core's BIST_STATUS register.
  static constexpr uint32_t kOpcodeStatus = core::LbistTop::kOpcodeStatus;
  /// Forwarded to the selected core's PRPG_SEED register.
  static constexpr uint32_t kOpcodeSeed = core::LbistTop::kOpcodeSeed;
  /// Forwarded to the selected core's MISR_SIG register.
  static constexpr uint32_t kOpcodeSignature = core::LbistTop::kOpcodeSignature;
  /// Selects which core the four opcodes above reach (LSB-first index).
  static constexpr uint32_t kOpcodeCoreSelect = 0b0110;
  /// CORE_SELECT register width (indexes up to 255 cores).
  static constexpr size_t kCoreSelectBits = 8;
  /// Chip-level IDCODE (distinct from the per-core LbistTop IDCODE).
  static constexpr uint32_t kIdcode = 0x1B15'70C0;

  /// An empty chip named `name`; add cores with addCore().
  explicit Chip(std::string name);

  Chip(const Chip&) = delete;
  Chip& operator=(const Chip&) = delete;

  /// Adds a core instance; the die starts as a copy of the BIST-ready
  /// netlist (a good die) and can be mutated afterwards through die().
  /// Returns the core's index (also its CORE_SELECT address). Throws on
  /// a duplicate instance name (names key campaign checkpoints) or when
  /// the CORE_SELECT address space (2^kCoreSelectBits) is full.
  size_t addCore(std::string name, core::BistReadyCore ready);

  /// Number of embedded cores.
  [[nodiscard]] size_t numCores() const { return slots_.size(); }
  /// Instance name of core `i`.
  [[nodiscard]] const std::string& coreName(size_t i) const;
  /// BIST-ready description of core `i`.
  [[nodiscard]] const core::BistReadyCore& core(size_t i) const;
  /// The silicon core `i` got — mutable so defects can be injected
  /// (fault::injectStuckAt) before a campaign.
  [[nodiscard]] Netlist& die(size_t i);
  /// Read-only die access (campaign jobs).
  [[nodiscard]] const Netlist& die(size_t i) const;
  /// Direct (non-JTAG) access to core `i`'s LbistTop.
  [[nodiscard]] core::LbistTop& top(size_t i);

  /// Characterizes golden signatures for every core by running fault-free
  /// sessions of `patterns` patterns, and arms each core's on-chip
  /// compare. Must run before campaigns or JTAG Result polling.
  void characterizeGolden(int64_t patterns);

  /// Golden signatures of core `i` (empty before characterizeGolden).
  [[nodiscard]] std::span<const std::string> golden(size_t i) const;
  /// Golden signatures of core `i` as per-domain LSB-first bit vectors —
  /// directly comparable with ChipTester::readSignature to name the
  /// diverging clock domain of a failing core.
  [[nodiscard]] std::vector<std::vector<uint8_t>> goldenSignatureBits(
      size_t i) const;
  /// Pattern count the goldens were characterized with (-1 before).
  [[nodiscard]] int64_t goldenPatterns() const { return golden_patterns_; }

  /// The chip-level TAP a host drives.
  [[nodiscard]] jtag::TapController& tap() { return tap_; }
  /// Currently selected core index (CORE_SELECT system side; survives
  /// TAP reset — selection is chip state, not TAP state). May be out of
  /// range when a host wrote a bad address; the BIST opcodes then
  /// degrade to 1-bit bypass registers rather than reaching any core.
  [[nodiscard]] size_t selectedCore() const { return selected_; }

  /// SEED register width of core `i` (domains x PRPG length).
  [[nodiscard]] size_t seedBits(size_t i) const;
  /// SIGNATURE register width of core `i` (sum of MISR lengths).
  [[nodiscard]] size_t signatureBits(size_t i) const;

  /// The chip's name.
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  [[nodiscard]] jtag::DataRegister* selectedCoreRegister(uint32_t opcode);

  struct Slot {
    std::string name;
    core::BistReadyCore ready;
    Netlist die;
    std::vector<std::string> golden;
    std::vector<std::vector<uint64_t>> golden_words;  // per domain
    std::unique_ptr<core::LbistTop> top;  // built last; points into ready/die
  };

  std::string name_;
  std::vector<std::unique_ptr<Slot>> slots_;
  size_t selected_ = 0;
  int64_t golden_patterns_ = -1;

  jtag::TapController tap_;
  std::unique_ptr<jtag::CallbackRegister> select_reg_;
  std::unique_ptr<jtag::ForwardingRegister> ctrl_fwd_;
  std::unique_ptr<jtag::ForwardingRegister> status_fwd_;
  std::unique_ptr<jtag::ForwardingRegister> seed_fwd_;
  std::unique_ptr<jtag::ForwardingRegister> sig_fwd_;
};

/// Host-side convenience over the chip TAP: drives the CORE_SELECT /
/// SEED / CTRL / STATUS / SIGNATURE sequences and attributes every TCK
/// to the core selected while it was spent (reset and select overhead
/// TCKs go to a separate bucket), so chip-level test-time accounting
/// sums exactly to the driver's total.
class ChipTester {
 public:
  /// Binds a driver to `chip`'s TAP; the caller keeps the chip alive.
  explicit ChipTester(Chip& chip);

  /// TAP reset (five TMS=1 clocks). Core selection is chip state and
  /// survives; counted as overhead TCKs.
  void reset();
  /// Writes CORE_SELECT; subsequent BIST ops reach core `index`. The
  /// select shift itself is attributed to `index`.
  void selectCore(size_t index);
  /// Loads per-domain PRPG seeds into the selected core's SEED register;
  /// throws unless exactly one seed per clock domain is given.
  void loadSeeds(std::span<const uint64_t> seeds);
  /// Writes CTRL with start=1 and the pattern count: runs the self-test.
  void start(int64_t patterns);

  /// One STATUS poll result.
  struct Status {
    bool finish = false;
    bool result_pass = false;
  };
  /// Reads the selected core's STATUS register.
  [[nodiscard]] Status readStatus();

  /// Unloads the selected core's SIGNATURE register, split per clock
  /// domain (LSB-first bits, DomainBist order).
  [[nodiscard]] std::vector<std::vector<uint8_t>> readSignature();

  /// Total TCKs the host spent on the chip TAP.
  [[nodiscard]] uint64_t tckCount() const { return driver_.tckCount(); }
  /// TCKs attributed to core `i` (0 for never-selected cores).
  [[nodiscard]] uint64_t coreTcks(size_t i) const {
    return i < core_tcks_.size() ? core_tcks_[i] : 0;
  }
  /// TCKs not attributable to any core (resets before a selection).
  [[nodiscard]] uint64_t overheadTcks() const { return overhead_tcks_; }

 private:
  void charge(uint64_t before, bool to_core);

  Chip* chip_;
  jtag::TapDriver driver_;
  std::vector<uint64_t> core_tcks_;
  uint64_t overhead_tcks_ = 0;
  bool selected_once_ = false;
};

/// Builds the cores of a generated SoC plan (gen::generateSocPlan) and
/// appends them to `chip`. `base` provides the flow knobs shared by all
/// cores (timing, TPI method/budgets); per-core chain counts and
/// test-point budgets come from the plan.
void appendGeneratedCores(Chip& chip, const gen::SocSpec& spec,
                          const core::LbistConfig& base = {});

}  // namespace lbist::soc
