// soc::Scheduler — packs per-core BIST sessions into concurrent groups
// under a chip-wide power budget.
//
// Model: a schedule is a sequence of groups; all cores of a group start
// together and the group ends when its longest session finishes
// (group-synchronous — the controller fabric only needs one chip-level
// Start per group). A group is feasible when the sum of its members'
// peak switching activity stays within the budget, so the chip never
// draws more than the budget in any cycle of any phase overlap.
//
// Algorithm: greedy longest-session-first first-fit (sort sessions by
// descending TCK count, place each into the first group with power
// headroom, else open a new group). Documented optimality gap: the
// group-synchronous model itself can waste power slack — a short session
// grouped with a long one idles its power share for the rest of the
// group — so the total can exceed the instance lower bound
//   lower_bound_tcks = max(longest session, ceil(sum(p_i * t_i) / budget))
// by up to 2x in adversarial instances (the classic bound for
// first-fit-decreasing resource packing; no better guarantee is claimed).
// Every TestSchedule records the bound so callers can see the achieved
// gap on their instance; bench_soc records it across budgets on the
// generated 8-core chip, where the greedy typically lands within a few
// percent.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/architect.hpp"
#include "core/session.hpp"
#include "robust/robust.hpp"

namespace lbist::soc {

/// One core's session as the scheduler sees it: a duration in TCKs and
/// a peak power demand (soc::PowerEstimate::peak() in toggles/cycle).
struct CoreSession {
  size_t core_index = 0;
  std::string name;
  uint64_t test_tcks = 0;
  double power = 0.0;
};

/// One concurrent group of the schedule. `members` index into
/// TestSchedule::sessions, in descending-duration placement order.
struct ScheduleGroup {
  std::vector<size_t> members;
  uint64_t start_tck = 0;
  uint64_t duration_tcks = 0;  // longest member session
  double power = 0.0;          // sum of member peak powers
};

/// A deterministic chip-level test schedule with its TCK accounting.
struct TestSchedule {
  double power_budget = 0.0;
  std::vector<CoreSession> sessions;  // as passed to build(), input order
  std::vector<ScheduleGroup> groups;  // execution order

  uint64_t total_tcks = 0;        // sum of group durations
  uint64_t serial_tcks = 0;       // one-core-at-a-time baseline
  uint64_t lower_bound_tcks = 0;  // see file comment

  /// Highest group power (always <= power_budget).
  [[nodiscard]] double peakPower() const;
  /// Serial-vs-scheduled test-time speedup.
  [[nodiscard]] double speedup() const {
    return total_tcks == 0 ? 0.0
                           : static_cast<double>(serial_tcks) /
                                 static_cast<double>(total_tcks);
  }
  /// Achieved total over the instance lower bound (>= 1.0).
  [[nodiscard]] double boundRatio() const {
    return lower_bound_tcks == 0
               ? 0.0
               : static_cast<double>(total_tcks) /
                     static_cast<double>(lower_bound_tcks);
  }
};

/// Largest single-session power of `sessions` — the smallest budget any
/// schedule over them can be built with.
[[nodiscard]] double peakSessionPower(std::span<const CoreSession> sessions);

/// Sum of session powers — the budget at which one group holds all.
[[nodiscard]] double totalSessionPower(std::span<const CoreSession> sessions);

/// Session length of one core's BIST run in TCK-equivalent cycles:
/// per-pattern shift windows, the final-unload window, and every
/// launch/capture pulse — matching what BistSession's controller counts
/// (SessionResult::shift_pulses + capture_pulses) plus the final unload.
[[nodiscard]] uint64_t sessionTcks(const core::BistReadyCore& core,
                                   const core::SessionOptions& opts);

/// Greedy longest-session-first power-budget packer (see file comment).
class Scheduler {
 public:
  /// `power_budget` is the chip-wide activity ceiling, in the same
  /// toggles/cycle unit as CoreSession::power.
  explicit Scheduler(double power_budget) : budget_(power_budget) {}

  /// Builds the schedule, or returns kInvalidArgument naming the first
  /// session whose power alone exceeds the budget (unschedulable — no
  /// grouping can help; raise the budget or gate that core's activity).
  [[nodiscard]] robust::Result<TestSchedule> tryBuild(
      std::vector<CoreSession> sessions) const;

  /// Throwing wrapper over tryBuild() for existing callers: throws
  /// std::invalid_argument with the status message on error.
  [[nodiscard]] TestSchedule build(std::vector<CoreSession> sessions) const;

 private:
  double budget_;
};

}  // namespace lbist::soc
