// soc::PowerModel — per-core test-power estimation from real switching
// activity.
//
// Scan BIST power is not functional power: the shift window toggles the
// scan chains with near-random data every slow TCK, and the capture
// window slams the whole combinational core from one pseudo-random state
// to the next. The estimator samples both components from the actual
// hardware the session would run: the per-domain PRPG + phase-shifter
// models produce the exact scan states (core::PrpgPatternSource), the
// compiled 2-valued kernel (sim/compiled) evaluates 64 patterns per
// sweep, and toggle counts are read straight off the value words. The
// unit is *toggles per cycle* — proportional to dynamic power and, like
// any activity measure, comparable across cores and additive across
// concurrently tested cores, which is what the scheduler packs against.
#pragma once

#include <cstdint>

#include "core/architect.hpp"

namespace lbist::soc {

/// Switching-activity estimate for one core's BIST session, split the
/// way the session spends cycles: shifting and capturing.
struct PowerEstimate {
  /// Mean toggles per shift TCK: scan cells whose value differs from
  /// their chain predecessor's toggle on every shift edge as the
  /// pattern marches down the chain.
  double shift_toggles_per_cycle = 0.0;
  /// Mean toggles per capture window: gates whose steady-state value
  /// differs between consecutive PRPG patterns.
  double capture_toggles_per_cycle = 0.0;
  /// Patterns the estimate was sampled over.
  int64_t sampled_patterns = 0;

  /// The packing unit: worst concurrent demand over the session's two
  /// phases. Conservative — groups sized by peak() never exceed the
  /// budget in either phase, whichever phases of their members overlap.
  [[nodiscard]] double peak() const {
    return shift_toggles_per_cycle > capture_toggles_per_cycle
               ? shift_toggles_per_cycle
               : capture_toggles_per_cycle;
  }
};

/// Reusable estimator bound to one BIST-ready core. estimate() is a pure
/// function of (core, sample_patterns, lane_words): repeated calls and
/// calls from different threads return identical numbers.
class PowerModel {
 public:
  /// Binds `core` (the caller keeps it alive) and fixes the lane-block
  /// width used for sampling (one of sim::isSupportedLaneWords()).
  /// Capture toggles are counted across word boundaries within a block,
  /// but block-boundary pattern pairs are never sampled — so wider
  /// blocks sample a few more consecutive-pattern pairs per run and the
  /// means can differ in the last decimals across widths (an estimator
  /// property, not a simulation difference).
  explicit PowerModel(const core::BistReadyCore& core, size_t lane_words = 1)
      : core_(&core), lane_words_(lane_words) {}

  /// Samples `sample_patterns` PRPG patterns (in lane-block groups)
  /// through the compiled kernel and returns the activity split.
  [[nodiscard]] PowerEstimate estimate(int64_t sample_patterns = 256) const;

 private:
  const core::BistReadyCore* core_;
  size_t lane_words_;
};

}  // namespace lbist::soc
