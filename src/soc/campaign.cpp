#include "soc/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "core/flow.hpp"
#include "core/session.hpp"
#include "core/thread_pool.hpp"
#include "obs/obs.hpp"
#include "soc/power.hpp"

namespace lbist::soc {

namespace {

constexpr const char* kCheckpointMagic = "lbist-campaign v1";

std::string checkpointHeader(const Chip& chip, int64_t patterns,
                             bool coverage) {
  std::ostringstream os;
  os << kCheckpointMagic << " chip=" << chip.name()
     << " patterns=" << patterns << " cores=" << chip.numCores()
     << " coverage=" << (coverage ? 1 : 0);
  return os.str();
}

std::string checkpointLine(const CoreRunResult& r) {
  std::ostringstream os;
  os << "core name=" << r.name << " pass=" << (r.pass ? 1 : 0)
     << " tcks=" << r.tcks << " coverage=";
  if (r.coverage_percent < 0.0) {
    os << "-";
  } else {
    os.precision(std::numeric_limits<double>::max_digits10);
    os << r.coverage_percent;
  }
  os << " sigs=";
  for (size_t i = 0; i < r.signatures.size(); ++i) {
    if (i > 0) os << ";";
    os << r.signatures[i];
  }
  return os.str();
}

/// Parses one `key=value` token; returns false on shape mismatch.
bool tokenValue(const std::string& token, const std::string& key,
                std::string* value) {
  if (token.rfind(key + "=", 0) != 0) return false;
  *value = token.substr(key.size() + 1);
  return true;
}

/// Loads completed-core results from a checkpoint file, in file order
/// (empty when the file does not exist). A kill can tear the file
/// mid-append, so only lines carrying every field are accepted — a torn
/// tail line is dropped and its core simply re-runs. Throws on header
/// mismatch: resuming a different chip or pattern count would silently
/// mix campaigns.
std::vector<CoreRunResult> loadCheckpoint(const std::string& path,
                                          const Chip& chip, int64_t patterns,
                                          bool coverage) {
  std::vector<CoreRunResult> done;
  std::ifstream in(path);
  if (!in.is_open()) return done;

  std::string header;
  std::getline(in, header);
  if (header.empty()) return done;  // empty file: treat as no checkpoint
  if (header != checkpointHeader(chip, patterns, coverage)) {
    throw std::invalid_argument(
        "checkpoint '" + path +
        "' does not match this chip campaign (chip, pattern count, or "
        "coverage mode)");
  }

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag != "core") continue;

    CoreRunResult r;
    r.from_checkpoint = true;
    bool has_name = false;
    bool has_pass = false;
    bool has_tcks = false;
    bool has_coverage = false;
    bool has_sigs = false;
    std::string token;
    std::string value;
    try {
      while (ls >> token) {
        if (tokenValue(token, "name", &value)) {
          r.name = value;
          has_name = !value.empty();
        } else if (tokenValue(token, "pass", &value)) {
          r.pass = value == "1";
          has_pass = true;
        } else if (tokenValue(token, "tcks", &value)) {
          r.tcks = std::stoull(value);
          has_tcks = true;
        } else if (tokenValue(token, "coverage", &value)) {
          r.coverage_percent = value == "-" ? -1.0 : std::stod(value);
          has_coverage = true;
        } else if (tokenValue(token, "sigs", &value)) {
          r.signatures.clear();
          std::istringstream ss(value);
          std::string sig;
          while (std::getline(ss, sig, ';')) r.signatures.push_back(sig);
          has_sigs = !r.signatures.empty();
        }
      }
    } catch (const std::exception&) {
      continue;  // torn numeric field: drop the line, the core re-runs
    }
    if (has_name && has_pass && has_tcks && has_coverage && has_sigs) {
      done.push_back(std::move(r));
    }
  }
  return done;
}

}  // namespace

CampaignRunner::CampaignRunner(Chip& chip, const TestSchedule& schedule,
                               core::SessionOptions session)
    : chip_(&chip), schedule_(&schedule), session_(std::move(session)) {}

CampaignResult CampaignRunner::run(const CampaignOptions& opts) {
  const int64_t patterns = session_.patterns;
  if (chip_->goldenPatterns() != patterns) {
    throw std::invalid_argument(
        "chip golden characterization (Chip::characterizeGolden) is "
        "missing or ran a different pattern count than the campaign "
        "session");
  }

  std::vector<CoreRunResult> loaded;
  if (!opts.checkpoint_path.empty() && opts.resume) {
    loaded = loadCheckpoint(opts.checkpoint_path, *chip_, patterns,
                            opts.measure_coverage);
  }
  std::map<std::string, CoreRunResult> done;
  for (const CoreRunResult& r : loaded) done.emplace(r.name, r);

  // The checkpoint is always rewritten from the accepted entries: a
  // resume after a torn append heals the file, so every campaign —
  // interrupted or not — converges to the same bytes. The rewrite goes
  // through a temp file + rename so a kill during the rewrite itself
  // can never lose the already-recorded cores.
  std::ofstream ckpt;
  if (!opts.checkpoint_path.empty()) {
    const std::string tmp = opts.checkpoint_path + ".tmp";
    {
      std::ofstream out(tmp, std::ios::trunc);
      if (!out.is_open()) {
        throw std::invalid_argument("cannot write checkpoint '" + tmp + "'");
      }
      out << checkpointHeader(*chip_, patterns, opts.measure_coverage)
          << "\n";
      for (const CoreRunResult& r : loaded) out << checkpointLine(r) << "\n";
    }
    if (std::rename(tmp.c_str(), opts.checkpoint_path.c_str()) != 0) {
      throw std::invalid_argument("cannot replace checkpoint '" +
                                  opts.checkpoint_path + "'");
    }
    ckpt.open(opts.checkpoint_path, std::ios::app);
    if (!ckpt.is_open()) {
      throw std::invalid_argument("cannot write checkpoint '" +
                                  opts.checkpoint_path + "'");
    }
  }

  OBS_SPAN("soc.campaign");
  const auto campaign_t0 = std::chrono::steady_clock::now();
  core::ThreadPool pool(opts.threads);
  CampaignResult result;

  const size_t group_limit =
      opts.max_groups < 0
          ? schedule_->groups.size()
          : std::min(schedule_->groups.size(),
                     static_cast<size_t>(opts.max_groups));

  for (size_t gi = 0; gi < group_limit; ++gi) {
    OBS_SPAN("soc.group");
    OBS_COUNT("soc.groups", 1);
    const ScheduleGroup& group = schedule_->groups[gi];

    // Workers fill disjoint slots; every shared structure (chip slots,
    // goldens, schedule) is read-only here. The index indirection keeps
    // the job list dense when some members come from the checkpoint.
    std::vector<size_t> pending;
    for (size_t m = 0; m < group.members.size(); ++m) {
      const CoreSession& cs = schedule_->sessions[group.members[m]];
      if (done.find(cs.name) == done.end()) pending.push_back(m);
    }
    std::vector<CoreRunResult> fresh(group.members.size());
    pool.run(static_cast<unsigned>(pending.size()), [&](unsigned shard) {
      OBS_SPAN("soc.core_session");
      OBS_COUNT("soc.cores_run", 1);
      const size_t m = pending[shard];
      const CoreSession& cs = schedule_->sessions[group.members[m]];
      const size_t ci = cs.core_index;
      const core::BistReadyCore& ready = chip_->core(ci);

      core::SessionResult golden;
      golden.signatures.assign(chip_->golden(ci).begin(),
                               chip_->golden(ci).end());
      core::BistSession session(ready, chip_->die(ci));
      const core::SessionResult res = session.run(session_, &golden);

      CoreRunResult r;
      r.name = cs.name;
      r.core_index = ci;
      r.pass = res.result_pass;
      r.signatures = res.signatures;
      r.tcks = sessionTcks(ready, session_);
      if (opts.measure_coverage) {
        core::CoverageFlow flow(ready);
        r.coverage_percent =
            flow.runRandomPhase(patterns).coverage.faultCoveragePercent();
      }
      fresh[m] = std::move(r);
    });

    // Serial merge in schedule order: result rows, failure accounting,
    // and checkpoint lines all come from this single loop.
    for (size_t m = 0; m < group.members.size(); ++m) {
      const CoreSession& cs = schedule_->sessions[group.members[m]];
      const auto it = done.find(cs.name);
      CoreRunResult r;
      if (it != done.end()) {
        r = it->second;
        r.core_index = cs.core_index;
        ++result.resumed_cores;
      } else {
        r = std::move(fresh[m]);
        if (ckpt.is_open()) ckpt << checkpointLine(r) << "\n" << std::flush;
      }
      if (!r.pass) ++result.failures;
      result.cores.push_back(std::move(r));
    }
    result.total_tcks += group.duration_tcks;
    ++result.executed_groups;

    if (opts.progress != nullptr) {
      const double secs = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - campaign_t0)
                              .count();
      *opts.progress << "[campaign] group " << (gi + 1) << "/" << group_limit
                     << ": " << result.cores.size() << " cores done ("
                     << result.resumed_cores << " resumed), "
                     << result.failures << " failures, " << secs << "s\n"
                     << std::flush;
    }
  }
  OBS_COUNT("soc.cores_resumed", result.resumed_cores);
  OBS_COUNT("soc.failures", result.failures);

  result.complete = result.executed_groups == schedule_->groups.size();
  return result;
}

std::vector<CoreSession> buildCoreSessions(const Chip& chip,
                                           const core::SessionOptions& session,
                                           int64_t power_sample_patterns) {
  std::vector<CoreSession> sessions;
  sessions.reserve(chip.numCores());
  for (size_t i = 0; i < chip.numCores(); ++i) {
    CoreSession cs;
    cs.core_index = i;
    cs.name = chip.coreName(i);
    cs.test_tcks = sessionTcks(chip.core(i), session);
    cs.power = PowerModel(chip.core(i)).estimate(power_sample_patterns).peak();
    sessions.push_back(std::move(cs));
  }
  return sessions;
}

TestSchedule buildChipSchedule(const Chip& chip, double power_budget,
                               const core::SessionOptions& session,
                               int64_t power_sample_patterns) {
  return Scheduler(power_budget)
      .build(buildCoreSessions(chip, session, power_sample_patterns));
}

}  // namespace lbist::soc
