#include "soc/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/flow.hpp"
#include "core/session.hpp"
#include "core/thread_pool.hpp"
#include "obs/obs.hpp"
#include "robust/io.hpp"
#include "robust/robust.hpp"
#include "soc/power.hpp"

namespace lbist::soc {

namespace {

// Checkpoint format v2: every line is `<content> crc=<8hex>` with the
// CRC32 of the content prefix. v1 files (no crc token) fail the header
// check and are quarantined like any other corruption — a v1 campaign
// cannot be resumed by a v2 runner, only healed by re-running.
constexpr const char* kCheckpointMagic = "lbist-campaign v2";

std::string checkpointHeader(const Chip& chip, int64_t patterns,
                             bool coverage, bool topup) {
  std::ostringstream os;
  os << kCheckpointMagic << " chip=" << chip.name()
     << " patterns=" << patterns << " cores=" << chip.numCores()
     << " coverage=" << (coverage ? 1 : 0);
  // Emitted only for top-up campaigns so pre-existing checkpoints keep
  // their exact header bytes; the mismatch is what stops a resume from
  // mixing topup and non-topup coverage numbers.
  if (topup) os << " topup=1";
  return os.str();
}

std::string checkpointLine(const CoreRunResult& r) {
  std::ostringstream os;
  os << "core name=" << r.name << " pass=" << (r.pass ? 1 : 0)
     << " tcks=" << r.tcks << " coverage=";
  if (r.coverage_percent < 0.0) {
    os << "-";
  } else {
    os.precision(std::numeric_limits<double>::max_digits10);
    os << r.coverage_percent;
  }
  // Optional token: absent for non-topup campaigns, keeping their
  // record bytes identical to the previous format.
  if (r.redundant >= 0) os << " redundant=" << r.redundant;
  os << " sigs=";
  for (size_t i = 0; i < r.signatures.size(); ++i) {
    if (i > 0) os << ";";
    os << r.signatures[i];
  }
  return os.str();
}

// Appends the integrity code: "<content> crc=<8hex>".
std::string withCrc(const std::string& content) {
  return content + " crc=" + robust::crc32Hex(content);
}

// Splits an intact "<content> crc=<8hex>" line; false when the token is
// missing, malformed, or the CRC disagrees with the content bytes.
bool splitCrcLine(const std::string& line, std::string* content) {
  const size_t pos = line.rfind(" crc=");
  if (pos == std::string::npos) return false;
  const std::string body = line.substr(0, pos);
  const std::string crc = line.substr(pos + 5);
  if (crc.size() != 8) return false;
  if (robust::crc32Hex(body) != crc) return false;
  *content = body;
  return true;
}

// Deterministic silent-corruption payload for kBitFlip injections: flip
// the low bit of the last non-newline byte, so the damaged line is
// always the most recent one and the experiment is reproducible.
void flipLastContentBit(std::string* bytes) {
  for (size_t i = bytes->size(); i-- > 0;) {
    if ((*bytes)[i] != '\n') {
      (*bytes)[i] = static_cast<char>((*bytes)[i] ^ 1);
      return;
    }
  }
}

/// Parses one `key=value` token; returns false on shape mismatch.
bool tokenValue(const std::string& token, const std::string& key,
                std::string* value) {
  if (token.rfind(key + "=", 0) != 0) return false;
  *value = token.substr(key.size() + 1);
  return true;
}

// Parses a CRC-validated record content into `*r`; false when the shape
// is wrong despite the intact CRC (this writer never produces that, so
// callers treat it as corruption).
bool parseRecord(const std::string& content, CoreRunResult* r) {
  std::istringstream ls(content);
  std::string tag;
  ls >> tag;
  if (tag != "core") return false;

  r->from_checkpoint = true;
  bool has_name = false;
  bool has_pass = false;
  bool has_tcks = false;
  bool has_coverage = false;
  bool has_sigs = false;
  std::string token;
  std::string value;
  try {
    while (ls >> token) {
      if (tokenValue(token, "name", &value)) {
        r->name = value;
        has_name = !value.empty();
      } else if (tokenValue(token, "pass", &value)) {
        r->pass = value == "1";
        has_pass = true;
      } else if (tokenValue(token, "tcks", &value)) {
        r->tcks = std::stoull(value);
        has_tcks = true;
      } else if (tokenValue(token, "coverage", &value)) {
        r->coverage_percent = value == "-" ? -1.0 : std::stod(value);
        has_coverage = true;
      } else if (tokenValue(token, "redundant", &value)) {
        r->redundant = std::stoll(value);  // optional (topup campaigns)
      } else if (tokenValue(token, "sigs", &value)) {
        r->signatures.clear();
        std::istringstream ss(value);
        std::string sig;
        while (std::getline(ss, sig, ';')) r->signatures.push_back(sig);
        has_sigs = !r->signatures.empty();
      }
    }
  } catch (const std::exception&) {
    return false;
  }
  return has_name && has_pass && has_tcks && has_coverage && has_sigs;
}

/// What checkpoint recovery salvaged: the longest valid record prefix,
/// plus how much corruption it cut away.
struct LoadedCheckpoint {
  std::vector<CoreRunResult> done;
  size_t dropped_records = 0;
  bool quarantined = false;
};

/// Loads completed-core results from a checkpoint, in file order (empty
/// when the file does not exist or is empty). Recovery model (WAL
/// semantics): the first line whose CRC fails invalidates itself AND
/// every later line — a corrupt middle means appends after it cannot be
/// ordered against the campaign, so they re-run. The corrupt original
/// is preserved as `<path>.corrupt` for postmortem. An intact header
/// naming a different campaign is the one unrecoverable case
/// (kCorruptCheckpoint): resuming would silently mix campaigns.
robust::Result<LoadedCheckpoint> tryLoadCheckpoint(const std::string& path,
                                                   const Chip& chip,
                                                   int64_t patterns,
                                                   bool coverage,
                                                   bool topup) {
  LoadedCheckpoint loaded;
  if (ROBUST_POINT("campaign.checkpoint.read", "", robust::kCanIoError) ==
      robust::FaultAction::kIoError) {
    return robust::Status::error(
        robust::ErrorCode::kIoError,
        "injected read failure on checkpoint '" + path + "'");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return loaded;  // no checkpoint yet
  std::string bytes;
  {
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  if (bytes.empty()) return loaded;

  std::vector<std::string> lines;
  {
    std::istringstream ls(bytes);
    std::string line;
    while (std::getline(ls, line)) lines.push_back(line);
  }

  const auto quarantine = [&]() {
    if (!loaded.quarantined) {
      (void)robust::atomicWriteFile(path + ".corrupt", bytes);
      loaded.quarantined = true;
      OBS_COUNT("soc.ckpt_quarantines", 1);
      if (obs::eventsEnabled()) {
        // Path deliberately omitted: test checkpoints live in per-run
        // temp dirs and would break byte-diffing across reruns.
        obs::Event("recover").field("kind", "checkpoint_quarantine").commit();
      }
    }
  };

  std::string header;
  if (lines.empty() || !splitCrcLine(lines[0], &header)) {
    // Corrupt header: nothing below it can be trusted. Quarantine and
    // run fresh — healing, not failing, keeps injected-then-resumed
    // campaigns convergent with clean runs.
    quarantine();
    loaded.dropped_records = lines.empty() ? 0 : lines.size() - 1;
    OBS_COUNT("soc.ckpt_records_dropped", loaded.dropped_records);
    return loaded;
  }
  if (header != checkpointHeader(chip, patterns, coverage, topup)) {
    return robust::Status::error(
        robust::ErrorCode::kCorruptCheckpoint,
        "checkpoint '" + path +
            "' does not match this chip campaign (chip, pattern count, or "
            "coverage mode)");
  }

  for (size_t i = 1; i < lines.size(); ++i) {
    CoreRunResult r;
    std::string content;
    if (!splitCrcLine(lines[i], &content) || !parseRecord(content, &r)) {
      quarantine();
      loaded.dropped_records += lines.size() - i;
      break;
    }
    loaded.done.push_back(std::move(r));
  }
  OBS_COUNT("soc.ckpt_records_dropped", loaded.dropped_records);
  return loaded;
}

}  // namespace

CampaignRunner::CampaignRunner(Chip& chip, const TestSchedule& schedule,
                               core::SessionOptions session)
    : chip_(&chip), schedule_(&schedule), session_(std::move(session)) {}

robust::Result<CampaignResult> CampaignRunner::tryRun(
    const CampaignOptions& opts) {
  const int64_t patterns = session_.patterns;
  if (chip_->goldenPatterns() != patterns) {
    return robust::Status::error(
        robust::ErrorCode::kInvalidArgument,
        "chip golden characterization (Chip::characterizeGolden) is "
        "missing or ran a different pattern count than the campaign "
        "session");
  }

  CampaignResult result;
  std::vector<CoreRunResult> loaded;
  if (!opts.checkpoint_path.empty() && opts.resume) {
    robust::Result<LoadedCheckpoint> lc = tryLoadCheckpoint(
        opts.checkpoint_path, *chip_, patterns, opts.measure_coverage,
        opts.topup_coverage);
    if (!lc.ok()) return lc.status();
    loaded = std::move(lc.value().done);
    result.dropped_records = lc.value().dropped_records;
    result.checkpoint_quarantined = lc.value().quarantined;
  }
  std::map<std::string, CoreRunResult> done;
  for (const CoreRunResult& r : loaded) done.emplace(r.name, r);

  // The checkpoint is always rewritten from the accepted entries: a
  // resume after any corruption heals the file, so every campaign —
  // interrupted or not — converges to the same bytes. The rewrite is
  // atomic (temp + fsync + rename, robust::atomicWriteFile) so a kill
  // during the rewrite itself can never lose already-recorded cores.
  std::ofstream ckpt;
  // Names in on-disk record order, for the completion-time order check.
  std::vector<std::string> written;
  if (!opts.checkpoint_path.empty()) {
    std::ostringstream os;
    os << withCrc(checkpointHeader(*chip_, patterns, opts.measure_coverage,
                                   opts.topup_coverage))
       << "\n";
    for (const CoreRunResult& r : loaded) {
      os << withCrc(checkpointLine(r)) << "\n";
      written.push_back(r.name);
    }
    std::string content = os.str();
    // WAL-buffer accounting: the rewrite holds the whole checkpoint
    // image in memory until the atomic rename lands. RAII so injected
    // early returns below release the same bytes they charged.
    obs::GaugeCharge wal_charge;
    if (obs::metricsEnabled()) {
      wal_charge = obs::GaugeCharge(obs::gaugeId("soc.ckpt_wal_bytes"),
                                    static_cast<int64_t>(content.size()));
    }
    if (obs::eventsEnabled()) {
      obs::Event("checkpoint_rewrite")
          .field("reason", "start")
          .field("records", static_cast<uint64_t>(loaded.size()))
          .commit();
    }
    const robust::FaultAction act = ROBUST_POINT(
        "campaign.checkpoint.rewrite", "",
        robust::kCanIoError | robust::kCanTornWrite | robust::kCanBitFlip);
    if (act == robust::FaultAction::kIoError) {
      return robust::Status::error(
          robust::ErrorCode::kIoError,
          "injected write failure rewriting checkpoint '" +
              opts.checkpoint_path + "'");
    }
    if (act == robust::FaultAction::kTornWrite) {
      // A kill that raced a non-atomic writer: the destination keeps a
      // prefix of the bytes and this process dies. The next resume
      // quarantines and heals whatever survived.
      std::ofstream torn(opts.checkpoint_path,
                         std::ios::trunc | std::ios::binary);
      torn << content.substr(0, content.size() / 2) << std::flush;
      return robust::Status::error(
          robust::ErrorCode::kIoError,
          "injected torn write rewriting checkpoint '" +
              opts.checkpoint_path + "'");
    }
    if (act == robust::FaultAction::kBitFlip) {
      // Silent media corruption: the write "succeeds" with one bit
      // wrong and the campaign continues believing it.
      flipLastContentBit(&content);
    }
    const robust::Status wrote =
        robust::atomicWriteFile(opts.checkpoint_path, content);
    if (!wrote.ok()) return wrote;
    ckpt.open(opts.checkpoint_path, std::ios::app | std::ios::binary);
    if (!ckpt.is_open()) {
      return robust::Status::error(
          robust::ErrorCode::kIoError,
          "cannot append to checkpoint '" + opts.checkpoint_path + "'");
    }
  }

  OBS_SPAN("soc.campaign");
  const auto campaign_t0 = std::chrono::steady_clock::now();
  core::ThreadPool pool(opts.threads);

  const size_t group_limit =
      opts.max_groups < 0
          ? schedule_->groups.size()
          : std::min(schedule_->groups.size(),
                     static_cast<size_t>(opts.max_groups));

  // Planned simulated test time across the groups this run will
  // execute; the heartbeat's ETA is elapsed wall scaled by the
  // remaining fraction of this total.
  uint64_t planned_tcks = 0;
  for (size_t g = 0; g < group_limit; ++g) {
    planned_tcks += schedule_->groups[g].duration_tcks;
  }

  for (size_t gi = 0; gi < group_limit; ++gi) {
    OBS_SPAN("soc.group");
    OBS_COUNT("soc.groups", 1);
    const ScheduleGroup& group = schedule_->groups[gi];

    // Workers fill disjoint slots; every shared structure (chip slots,
    // goldens, schedule) is read-only here. The index indirection keeps
    // the job list dense when some members come from the checkpoint.
    std::vector<size_t> pending;
    for (size_t m = 0; m < group.members.size(); ++m) {
      const CoreSession& cs = schedule_->sessions[group.members[m]];
      if (done.find(cs.name) == done.end()) pending.push_back(m);
    }
    std::vector<CoreRunResult> fresh(group.members.size());
    pool.run(static_cast<unsigned>(pending.size()), [&](unsigned shard) {
      const size_t m = pending[shard];
      const CoreSession& cs = schedule_->sessions[group.members[m]];
      const size_t ci = cs.core_index;
      // SoC Perfetto tracks read by the core under test, not the pool
      // slot; a worker that serves several cores keeps its most recent
      // label.
      obs::setThreadName("core-" + cs.name);
      OBS_SPAN("soc.core_session");

      // Retry loop under the deterministic budget: an attempt that
      // throws is retried (jobs are pure, re-running is safe); a
      // watchdog expiry is not (a hang would hang again). Backoff is
      // charged to an obs counter, never slept, so campaign results
      // stay bit-exact whatever the retry history.
      CoreRunResult r;
      r.name = cs.name;
      r.core_index = ci;
      for (uint32_t attempt = 1;; ++attempt) {
        r.attempts = attempt;
        const uint64_t backoff = opts.retry.backoffTicks(attempt);
        if (backoff != 0) OBS_COUNT("soc.backoff_ticks", backoff);
        r.error = robust::ErrorCode::kOk;
        r.error_detail.clear();
        const robust::FaultAction act = ROBUST_POINT(
            "campaign.job.run", cs.name,
            robust::kCanThrow | robust::kCanHang);
        if (act == robust::FaultAction::kHang) {
          r.error = robust::ErrorCode::kBudgetExceeded;
          r.error_detail =
              "watchdog: core session exceeded " +
              std::to_string(opts.watchdog_budget_ticks) +
              " simulated ticks";
          break;
        }
        try {
          if (act == robust::FaultAction::kThrow) {
            throw std::runtime_error("injected session failure on core '" +
                                     cs.name + "'");
          }
          OBS_COUNT("soc.cores_run", 1);
          const core::BistReadyCore& ready = chip_->core(ci);
          core::SessionResult golden;
          golden.signatures.assign(chip_->golden(ci).begin(),
                                   chip_->golden(ci).end());
          core::BistSession session(ready, chip_->die(ci));
          const core::SessionResult res = session.run(session_, &golden);
          r.pass = res.result_pass;
          r.signatures = res.signatures;
          r.tcks = sessionTcks(ready, session_);
          if (opts.measure_coverage) {
            core::CoverageFlow flow(ready);
            const double random_cov = flow.runRandomPhase(patterns)
                                          .coverage.faultCoveragePercent();
            if (opts.topup_coverage) {
              // Full-flow number: random phase + deterministic top-up
              // with SAT escalation, so the hard tail ends as cubes or
              // redundancy proofs instead of stranded targets.
              atpg::TopUpConfig tcfg;
              tcfg.sat_escalate = true;
              const atpg::TopUpResult tr = flow.runTopUp(tcfg);
              r.coverage_percent =
                  tr.final_coverage.faultCoveragePercent();
              r.redundant = static_cast<int64_t>(tr.proven_redundant);
            } else {
              r.coverage_percent = random_cov;
            }
          }
          break;
        } catch (const std::exception& e) {
          r.error = robust::ErrorCode::kJobFailed;
          r.error_detail = e.what();
          r.pass = false;
          r.signatures.clear();
          r.tcks = 0;
          r.coverage_percent = -1.0;
          r.redundant = -1;
        }
        if (attempt >= opts.retry.max_attempts) break;
        OBS_COUNT("soc.job_retries", 1);
        if (obs::eventsEnabled()) {
          // Retry history is deterministic per core (pure jobs, fixed
          // plan) but workers interleave, hence commitShared.
          obs::Event("recover")
              .field("kind", "job_retry")
              .field("core", cs.name)
              .field("attempt", static_cast<uint64_t>(attempt))
              .commitShared();
        }
      }
      fresh[m] = std::move(r);
    });

    // Serial merge in schedule order: result rows, failure accounting,
    // and checkpoint lines all come from this single loop. Only cores
    // that actually executed (error == kOk) are checkpointed; a
    // failed-with-reason core re-runs on resume, which is what lets an
    // injected run converge to clean-run bytes.
    for (size_t m = 0; m < group.members.size(); ++m) {
      const CoreSession& cs = schedule_->sessions[group.members[m]];
      const auto it = done.find(cs.name);
      CoreRunResult r;
      if (it != done.end()) {
        r = it->second;
        r.core_index = cs.core_index;
        ++result.resumed_cores;
      } else {
        r = std::move(fresh[m]);
        if (r.error != robust::ErrorCode::kOk) {
          ++result.job_failures;
          OBS_COUNT("soc.job_failures", 1);
        } else if (ckpt.is_open()) {
          std::string line = withCrc(checkpointLine(r));
          const robust::FaultAction act = ROBUST_POINT(
              "campaign.checkpoint.append", r.name,
              robust::kCanIoError | robust::kCanTornWrite |
                  robust::kCanBitFlip);
          if (act == robust::FaultAction::kIoError) {
            ckpt.close();
            result.checkpoint_status = robust::Status::error(
                robust::ErrorCode::kIoError,
                "injected append failure on checkpoint '" +
                    opts.checkpoint_path + "' at core '" + r.name + "'");
            OBS_COUNT("soc.ckpt_write_failures", 1);
          } else if (act == robust::FaultAction::kTornWrite) {
            // Torn mid-append: half the line, no newline. Later appends
            // concatenate onto it; recovery drops the garbled line and
            // everything after.
            ckpt << line.substr(0, line.size() / 2) << std::flush;
            written.push_back(r.name);
          } else {
            if (act == robust::FaultAction::kBitFlip) {
              flipLastContentBit(&line);
            }
            ckpt << line << "\n" << std::flush;
            written.push_back(r.name);
          }
          // Graceful degradation on a genuine append failure: keep the
          // campaign running without checkpointing and surface the
          // status; resume re-runs the unrecorded cores.
          if (ckpt.is_open() && !ckpt.good()) {
            ckpt.close();
            result.checkpoint_status = robust::Status::error(
                robust::ErrorCode::kIoError,
                "checkpoint append failed on '" + opts.checkpoint_path +
                    "' at core '" + r.name + "'");
            OBS_COUNT("soc.ckpt_write_failures", 1);
          }
        }
      }
      if (!r.pass) ++result.failures;
      if (obs::eventsEnabled()) {
        // One event per core, emitted from this serial merge so the
        // order is schedule order for every thread count.
        obs::Event("core_result")
            .field("core", r.name)
            .field("group", static_cast<uint64_t>(gi + 1))
            .field("pass", r.pass)
            .field("resumed", it != done.end())
            .field("tcks", r.tcks)
            .commit();
      }
      result.cores.push_back(std::move(r));
    }
    result.total_tcks += group.duration_tcks;
    ++result.executed_groups;
    if (obs::eventsEnabled()) {
      obs::Event("group_done")
          .field("group", static_cast<uint64_t>(gi + 1))
          .field("groups", static_cast<uint64_t>(group_limit))
          .field("cores_done", static_cast<uint64_t>(result.cores.size()))
          .field("failures", static_cast<uint64_t>(result.failures))
          .field("tcks", result.total_tcks)
          .commit();
    }
    // Rate-curve anchor: one sample per merged group, work-indexed by
    // the cumulative simulated test time (the campaign unit of work).
    OBS_SAMPLE("soc.group", static_cast<int64_t>(result.total_tcks));

    if (opts.progress != nullptr) {
      const double secs = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - campaign_t0)
                              .count();
      // Rate and ETA come from campaign-local tck accounting (simulated
      // test time over wall time), so the heartbeat needs no wall-clock
      // state beyond the campaign start.
      const double rate = secs > 0.0
                              ? static_cast<double>(result.total_tcks) / secs
                              : 0.0;
      const double eta =
          result.total_tcks > 0
              ? secs *
                    static_cast<double>(planned_tcks - result.total_tcks) /
                    static_cast<double>(result.total_tcks)
              : 0.0;
      *opts.progress << "[campaign] group " << (gi + 1) << "/" << group_limit
                     << ": " << result.cores.size() << " cores done ("
                     << result.resumed_cores << " resumed), "
                     << result.failures << " failures, " << secs << "s, "
                     << rate << " tck/s, eta " << eta << "s\n"
                     << std::flush;
    }
  }
  OBS_COUNT("soc.cores_resumed", result.resumed_cores);
  OBS_COUNT("soc.failures", result.failures);

  result.complete = result.executed_groups == schedule_->groups.size();

  // Completion-time canonicalization: a core that failed in an earlier
  // run re-runs on resume and appends AFTER records that canonically
  // follow it (the append stream cannot insert). One atomic rewrite in
  // schedule-merge order restores the contract that every campaign —
  // however it got here — converges to identical checkpoint bytes. The
  // check is order-only: a record that reached disk corrupted stays
  // corrupted (quarantine evidence belongs to the next resume).
  if (result.complete && ckpt.is_open() && ckpt.good()) {
    std::vector<std::string> canonical;
    for (const CoreRunResult& r : result.cores) {
      if (r.error == robust::ErrorCode::kOk) canonical.push_back(r.name);
    }
    if (written != canonical) {
      ckpt.close();
      std::ostringstream os;
      os << withCrc(checkpointHeader(*chip_, patterns, opts.measure_coverage,
                                     opts.topup_coverage))
         << "\n";
      for (const CoreRunResult& r : result.cores) {
        if (r.error == robust::ErrorCode::kOk) {
          os << withCrc(checkpointLine(r)) << "\n";
        }
      }
      const std::string content = os.str();
      obs::GaugeCharge wal_charge;
      if (obs::metricsEnabled()) {
        wal_charge = obs::GaugeCharge(obs::gaugeId("soc.ckpt_wal_bytes"),
                                      static_cast<int64_t>(content.size()));
      }
      if (obs::eventsEnabled()) {
        obs::Event("checkpoint_rewrite")
            .field("reason", "canonicalize")
            .field("records", static_cast<uint64_t>(canonical.size()))
            .commit();
      }
      const robust::Status wrote =
          robust::atomicWriteFile(opts.checkpoint_path, content);
      if (!wrote.ok()) {
        // Degrade, not fail: the streamed file is complete and valid,
        // merely out of canonical order, and still resumes correctly.
        result.checkpoint_status = wrote;
        OBS_COUNT("soc.ckpt_write_failures", 1);
      } else {
        OBS_COUNT("soc.ckpt_canonicalized", 1);
      }
    }
  }
  return result;
}

CampaignResult CampaignRunner::run(const CampaignOptions& opts) {
  robust::Result<CampaignResult> result = tryRun(opts);
  if (!result.ok()) throw std::invalid_argument(result.status().message());
  return std::move(result).value();
}

std::vector<CoreSession> buildCoreSessions(const Chip& chip,
                                           const core::SessionOptions& session,
                                           int64_t power_sample_patterns) {
  std::vector<CoreSession> sessions;
  sessions.reserve(chip.numCores());
  for (size_t i = 0; i < chip.numCores(); ++i) {
    CoreSession cs;
    cs.core_index = i;
    cs.name = chip.coreName(i);
    cs.test_tcks = sessionTcks(chip.core(i), session);
    cs.power = PowerModel(chip.core(i)).estimate(power_sample_patterns).peak();
    sessions.push_back(std::move(cs));
  }
  return sessions;
}

TestSchedule buildChipSchedule(const Chip& chip, double power_budget,
                               const core::SessionOptions& session,
                               int64_t power_sample_patterns) {
  return Scheduler(power_budget)
      .build(buildCoreSessions(chip, session, power_sample_patterns));
}

}  // namespace lbist::soc
