#include "soc/power.hpp"

#include <bit>

#include "core/pattern_source.hpp"
#include "sim/sim2v.hpp"

namespace lbist::soc {

PowerEstimate PowerModel::estimate(int64_t sample_patterns) const {
  PowerEstimate est;
  if (sample_patterns <= 0) return est;

  const Netlist& nl = core_->netlist;
  sim::Simulator2v sim(nl);
  core::PrpgPatternSource source(*core_);

  uint64_t capture_toggles = 0;
  int64_t capture_transitions = 0;
  uint64_t shift_diffs = 0;
  int64_t shift_samples = 0;

  for (int64_t base = 0; base < sample_patterns; base += 64) {
    const int lanes = static_cast<int>(
        sample_patterns - base < 64 ? sample_patterns - base : 64);
    source.loadBlock(sim, lanes);
    sim.eval();

    // Capture component: lane l of every value word is pattern base+l's
    // steady state, so adjacent-lane XOR popcounts are exactly the gate
    // toggles between consecutive patterns' capture states.
    if (lanes >= 2) {
      const uint64_t adj_mask = (~uint64_t{0}) >> (64 - (lanes - 1));
      for (size_t g = 0; g < nl.numGates(); ++g) {
        const uint64_t w = sim.value(GateId{static_cast<uint32_t>(g)});
        capture_toggles += static_cast<uint64_t>(
            std::popcount((w ^ (w >> 1)) & adj_mask));
      }
      capture_transitions += lanes - 1;
    }

    // Shift component: as a loaded pattern marches down a chain, every
    // adjacent cell pair that disagrees produces one toggle per shift
    // edge, so the per-lane mean of adjacent-cell XORs is the expected
    // chain toggle count per shift TCK.
    for (const dft::ScanChain& chain : core_->scan.chains) {
      for (size_t c = 0; c + 1 < chain.cells.size(); ++c) {
        const uint64_t a = sim.value(chain.cells[c]);
        const uint64_t b = sim.value(chain.cells[c + 1]);
        const uint64_t lane_mask =
            lanes == 64 ? ~uint64_t{0} : (uint64_t{1} << lanes) - 1;
        shift_diffs += static_cast<uint64_t>(
            std::popcount((a ^ b) & lane_mask));
      }
    }
    shift_samples += lanes;
  }

  if (capture_transitions > 0) {
    est.capture_toggles_per_cycle = static_cast<double>(capture_toggles) /
                                    static_cast<double>(capture_transitions);
  }
  if (shift_samples > 0) {
    est.shift_toggles_per_cycle = static_cast<double>(shift_diffs) /
                                  static_cast<double>(shift_samples);
  }
  est.sampled_patterns = sample_patterns;
  return est;
}

}  // namespace lbist::soc
