#include "soc/power.hpp"

#include <algorithm>
#include <bit>

#include "core/pattern_source.hpp"
#include "sim/sim2v.hpp"

namespace lbist::soc {

PowerEstimate PowerModel::estimate(int64_t sample_patterns) const {
  PowerEstimate est;
  if (sample_patterns <= 0) return est;

  const Netlist& nl = core_->netlist;
  sim::Simulator2v sim(nl, lane_words_);
  core::PrpgPatternSource source(*core_, lane_words_);
  const int64_t block_lanes = static_cast<int64_t>(sim.lanes());

  uint64_t capture_toggles = 0;
  int64_t capture_transitions = 0;
  uint64_t shift_diffs = 0;
  int64_t shift_samples = 0;

  for (int64_t base = 0; base < sample_patterns; base += block_lanes) {
    const int lanes = static_cast<int>(
        std::min<int64_t>(block_lanes, sample_patterns - base));
    source.loadBlock(sim, lanes);
    sim.eval();

    // Capture component: lane l of every value row is pattern base+l's
    // steady state, so adjacent-lane XOR popcounts are exactly the gate
    // toggles between consecutive patterns' capture states. The pair
    // straddling each 64-lane word boundary (lane 63 of word wi vs lane
    // 0 of word wi+1) is counted explicitly so wide blocks miss nothing.
    if (lanes >= 2) {
      for (size_t g = 0; g < nl.numGates(); ++g) {
        const sim::LaneMask row =
            sim.valueRow(GateId{static_cast<uint32_t>(g)});
        for (size_t wi = 0; wi * 64 < static_cast<size_t>(lanes); ++wi) {
          const uint64_t w = row.word(wi);
          const int in_word = static_cast<int>(std::min<size_t>(
              64, static_cast<size_t>(lanes) - wi * 64));
          if (in_word >= 2) {
            const uint64_t adj_mask = (~uint64_t{0}) >> (64 - (in_word - 1));
            capture_toggles += static_cast<uint64_t>(
                std::popcount((w ^ (w >> 1)) & adj_mask));
          }
          if (wi * 64 + 64 < static_cast<size_t>(lanes)) {
            capture_toggles += ((w >> 63) ^ row.word(wi + 1)) & 1u;
          }
        }
      }
      capture_transitions += lanes - 1;
    }

    // Shift component: as a loaded pattern marches down a chain, every
    // adjacent cell pair that disagrees produces one toggle per shift
    // edge, so the per-lane mean of adjacent-cell XORs is the expected
    // chain toggle count per shift TCK.
    for (const dft::ScanChain& chain : core_->scan.chains) {
      for (size_t c = 0; c + 1 < chain.cells.size(); ++c) {
        const sim::LaneMask a = sim.valueRow(chain.cells[c]);
        const sim::LaneMask b = sim.valueRow(chain.cells[c + 1]);
        for (size_t wi = 0; wi * 64 < static_cast<size_t>(lanes); ++wi) {
          const int in_word = static_cast<int>(std::min<size_t>(
              64, static_cast<size_t>(lanes) - wi * 64));
          const uint64_t lane_mask =
              in_word == 64 ? ~uint64_t{0}
                            : (uint64_t{1} << in_word) - 1;
          shift_diffs += static_cast<uint64_t>(
              std::popcount((a.word(wi) ^ b.word(wi)) & lane_mask));
        }
      }
    }
    shift_samples += lanes;
  }

  if (capture_transitions > 0) {
    est.capture_toggles_per_cycle = static_cast<double>(capture_toggles) /
                                    static_cast<double>(capture_transitions);
  }
  if (shift_samples > 0) {
    est.shift_toggles_per_cycle = static_cast<double>(shift_diffs) /
                                  static_cast<double>(shift_samples);
  }
  est.sampled_patterns = sample_patterns;
  return est;
}

}  // namespace lbist::soc
