#include "soc/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <utility>

namespace lbist::soc {

double TestSchedule::peakPower() const {
  double peak = 0.0;
  for (const ScheduleGroup& g : groups) peak = std::max(peak, g.power);
  return peak;
}

double peakSessionPower(std::span<const CoreSession> sessions) {
  double peak = 0.0;
  for (const CoreSession& s : sessions) peak = std::max(peak, s.power);
  return peak;
}

double totalSessionPower(std::span<const CoreSession> sessions) {
  double total = 0.0;
  for (const CoreSession& s : sessions) total += s.power;
  return total;
}

uint64_t sessionTcks(const core::BistReadyCore& core,
                     const core::SessionOptions& opts) {
  const auto shift_cycles =
      static_cast<uint64_t>(core.shiftCyclesPerPattern());
  const auto patterns = static_cast<uint64_t>(opts.patterns);
  const bist::AtSpeedTimingConfig& timing =
      opts.timing_override ? *opts.timing_override : core.config.timing;
  const uint64_t pulses_per_domain = timing.double_capture ? 2 : 1;

  uint64_t tcks = patterns * shift_cycles;
  if (opts.final_unload) tcks += shift_cycles;
  tcks += patterns * pulses_per_domain *
          static_cast<uint64_t>(core.netlist.numDomains());
  return tcks;
}

robust::Result<TestSchedule> Scheduler::tryBuild(
    std::vector<CoreSession> sessions) const {
  TestSchedule sched;
  sched.power_budget = budget_;

  for (const CoreSession& s : sessions) {
    if (s.power > budget_) {
      return robust::Status::error(
          robust::ErrorCode::kInvalidArgument,
          "core '" + s.name + "' exceeds the power budget on its own");
    }
  }

  // Longest session first; ties break on input position so the schedule
  // is a pure function of the session list.
  std::vector<size_t> order(sessions.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (sessions[a].test_tcks != sessions[b].test_tcks) {
      return sessions[a].test_tcks > sessions[b].test_tcks;
    }
    return a < b;
  });

  for (size_t idx : order) {
    const CoreSession& s = sessions[idx];
    ScheduleGroup* placed = nullptr;
    for (ScheduleGroup& g : sched.groups) {
      if (g.power + s.power <= budget_) {
        placed = &g;
        break;
      }
    }
    if (placed == nullptr) {
      sched.groups.emplace_back();
      placed = &sched.groups.back();
    }
    placed->members.push_back(idx);
    placed->power += s.power;
    placed->duration_tcks = std::max(placed->duration_tcks, s.test_tcks);
  }

  uint64_t t = 0;
  for (ScheduleGroup& g : sched.groups) {
    g.start_tck = t;
    t += g.duration_tcks;
  }
  sched.total_tcks = t;

  uint64_t longest = 0;
  double power_area = 0.0;
  for (const CoreSession& s : sessions) {
    sched.serial_tcks += s.test_tcks;
    longest = std::max(longest, s.test_tcks);
    power_area += s.power * static_cast<double>(s.test_tcks);
  }
  const auto area_bound = budget_ <= 0.0
                              ? uint64_t{0}
                              : static_cast<uint64_t>(
                                    std::ceil(power_area / budget_));
  sched.lower_bound_tcks = std::max(longest, area_bound);

  sched.sessions = std::move(sessions);
  return sched;
}

TestSchedule Scheduler::build(std::vector<CoreSession> sessions) const {
  robust::Result<TestSchedule> result = tryBuild(std::move(sessions));
  if (!result.ok()) throw std::invalid_argument(result.status().message());
  return std::move(result).value();
}

}  // namespace lbist::soc
