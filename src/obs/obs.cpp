#include "obs/obs.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace lbist::obs {

namespace detail {
std::atomic<bool> g_metrics_enabled{false};
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

/// One buffered trace event (a completed span on one thread's track).
struct TraceEvent {
  std::string name;
  double ts_us = 0.0;
  double dur_us = 0.0;
};

/// Per-name timing accumulator inside one shard.
struct Hist {
  uint64_t count = 0;
  double total = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = 0.0;
};

/// One thread's private slice of every instrument. Owned by the global
/// registry (so totals survive thread exit — ThreadPool workers die
/// with their pool, snapshots happen later) and written only by its
/// thread; snapshots/resets must run at quiescent points, which is
/// where every caller in the tree takes them.
struct Shard {
  std::vector<uint64_t> counts;  // by counter id
  std::vector<Hist> timers;      // by timer id
  std::vector<TraceEvent> events;
  uint32_t tid = 0;  // stable per-thread track ordinal (1-based)
  std::string thread_name;
};

/// Process-wide instrument state: interned names and the shard list.
/// All members mutex-guarded; the hot path touches it only on first
/// use per thread / per name.
struct Registry {
  std::mutex mutex;
  std::unordered_map<std::string, uint32_t> counter_ids;
  std::vector<std::string> counter_names;
  std::unordered_map<std::string, uint32_t> timer_ids;
  std::vector<std::string> timer_names;
  std::vector<std::unique_ptr<Shard>> shards;
  uint32_t next_tid = 1;

  static Registry& instance() {
    static Registry r;
    return r;
  }
};

thread_local Shard* tls_shard = nullptr;

Shard& myShard() {
  if (tls_shard == nullptr) {
    Registry& reg = Registry::instance();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.shards.push_back(std::make_unique<Shard>());
    reg.shards.back()->tid = reg.next_tid++;
    tls_shard = reg.shards.back().get();
  }
  return *tls_shard;
}

uint32_t internName(std::unordered_map<std::string, uint32_t>& ids,
                    std::vector<std::string>& names, std::string_view name) {
  std::string key(name);
  const auto it = ids.find(key);
  if (it != ids.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(names.size());
  names.push_back(key);
  ids.emplace(std::move(key), id);
  return id;
}

std::chrono::steady_clock::time_point traceEpoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

/// Emits `s` with JSON string escaping (span/thread names are
/// code-controlled, but a stray quote must not corrupt the file).
void writeEscaped(std::FILE* f, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      std::fputc('\\', f);
      std::fputc(c, f);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      std::fprintf(f, "\\u%04x", c);
    } else {
      std::fputc(c, f);
    }
  }
}

}  // namespace

void setMetricsEnabled(bool enabled) {
  detail::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

void setTraceEnabled(bool enabled) {
  // Pin the epoch before the first span so timestamps are non-negative.
  if (enabled) traceEpoch();
  detail::g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

uint32_t counterId(std::string_view name) {
  Registry& reg = Registry::instance();
  std::lock_guard<std::mutex> lock(reg.mutex);
  return internName(reg.counter_ids, reg.counter_names, name);
}

uint32_t timerId(std::string_view name) {
  Registry& reg = Registry::instance();
  std::lock_guard<std::mutex> lock(reg.mutex);
  return internName(reg.timer_ids, reg.timer_names, name);
}

void addCount(uint32_t id, uint64_t delta) {
  Shard& s = myShard();
  if (s.counts.size() <= id) s.counts.resize(id + 1, 0);
  s.counts[id] += delta;
}

void addTiming(uint32_t id, double seconds) {
  Shard& s = myShard();
  if (s.timers.size() <= id) s.timers.resize(id + 1);
  Hist& h = s.timers[id];
  ++h.count;
  h.total += seconds;
  h.min = std::min(h.min, seconds);
  h.max = std::max(h.max, seconds);
}

void addSpan(std::string_view name, double ts_us, double dur_us) {
  myShard().events.push_back(
      TraceEvent{std::string(name), ts_us, dur_us});
}

void setThreadName(std::string_view name) {
  myShard().thread_name.assign(name);
}

double nowTraceMicros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - traceEpoch())
      .count();
}

std::vector<CounterValue> counterSnapshot() {
  Registry& reg = Registry::instance();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<CounterValue> out(reg.counter_names.size());
  for (size_t i = 0; i < out.size(); ++i) out[i].name = reg.counter_names[i];
  for (const auto& shard : reg.shards) {
    for (size_t i = 0; i < shard->counts.size(); ++i) {
      out[i].value += shard->counts[i];
    }
  }
  std::sort(out.begin(), out.end(),
            [](const CounterValue& a, const CounterValue& b) {
              return a.name < b.name;
            });
  return out;
}

std::vector<TimerValue> timerSnapshot() {
  Registry& reg = Registry::instance();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<TimerValue> out(reg.timer_names.size());
  for (size_t i = 0; i < out.size(); ++i) out[i].name = reg.timer_names[i];
  for (const auto& shard : reg.shards) {
    for (size_t i = 0; i < shard->timers.size(); ++i) {
      const Hist& h = shard->timers[i];
      if (h.count == 0) continue;
      TimerValue& t = out[i];
      t.total_seconds += h.total;
      t.min_seconds = t.count == 0 ? h.min : std::min(t.min_seconds, h.min);
      t.max_seconds = std::max(t.max_seconds, h.max);
      t.count += h.count;
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TimerValue& a, const TimerValue& b) {
              return a.name < b.name;
            });
  return out;
}

uint64_t counterValue(std::string_view name) {
  for (const CounterValue& c : counterSnapshot()) {
    if (c.name == name) return c.value;
  }
  return 0;
}

void resetAll() {
  Registry& reg = Registry::instance();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& shard : reg.shards) {
    std::fill(shard->counts.begin(), shard->counts.end(), 0);
    std::fill(shard->timers.begin(), shard->timers.end(), Hist{});
    shard->events.clear();
  }
}

bool writeTraceJson(const std::string& path) {
  Registry& reg = Registry::instance();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;

  std::fprintf(f,
               "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n"
               "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": 1, "
               "\"args\": {\"name\": \"lbist\"}}");

  for (const auto& shard : reg.shards) {
    if (shard->events.empty() && shard->thread_name.empty()) continue;
    std::fprintf(f,
                 ",\n{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 1, "
                 "\"tid\": %u, \"args\": {\"name\": \"",
                 shard->tid);
    writeEscaped(f, shard->thread_name.empty()
                        ? "thread-" + std::to_string(shard->tid)
                        : shard->thread_name);
    std::fprintf(f, "\"}}");

    // RAII spans complete in reverse-begin order within a nest, so the
    // buffer is not ts-sorted; the viewer and check_trace.py both want
    // begin-ascending per track. stable_sort keeps equal-ts parents
    // before their zero-length children only if dur ties break longer
    // first, so sort on (ts, -dur).
    std::vector<const TraceEvent*> evs;
    evs.reserve(shard->events.size());
    for (const TraceEvent& e : shard->events) evs.push_back(&e);
    std::stable_sort(evs.begin(), evs.end(),
                     [](const TraceEvent* a, const TraceEvent* b) {
                       if (a->ts_us != b->ts_us) return a->ts_us < b->ts_us;
                       return a->dur_us > b->dur_us;
                     });
    for (const TraceEvent* e : evs) {
      std::fprintf(f,
                   ",\n{\"ph\": \"X\", \"name\": \"");
      writeEscaped(f, e->name);
      std::fprintf(f,
                   "\", \"cat\": \"lbist\", \"pid\": 1, \"tid\": %u, "
                   "\"ts\": %.3f, \"dur\": %.3f}",
                   shard->tid, e->ts_us, e->dur_us);
    }
  }
  std::fprintf(f, "\n]}\n");
  std::fclose(f);
  return true;
}

void writeCountersJson(std::FILE* f, const char* indent) {
  const std::vector<CounterValue> counters = counterSnapshot();
  std::fprintf(f, "%s\"counters\": {", indent);
  for (size_t i = 0; i < counters.size(); ++i) {
    std::fprintf(f, "%s\n%s  \"", i == 0 ? "" : ",", indent);
    writeEscaped(f, counters[i].name);
    std::fprintf(f, "\": %llu",
                 static_cast<unsigned long long>(counters[i].value));
  }
  std::fprintf(f, "\n%s}", indent);
}

SpanScope::SpanScope(const char* name, uint32_t tid)
    : name_(name),
      timer_id_(tid),
      armed_(metricsEnabled()),
      trace_(traceEnabled()) {
  if (armed_ || trace_) start_us_ = nowTraceMicros();
}

SpanScope::~SpanScope() {
  if (!armed_ && !trace_) return;
  const double end_us = nowTraceMicros();
  const double dur_us = end_us - start_us_;
  if (armed_) addTiming(timer_id_, dur_us * 1e-6);
  if (trace_) addSpan(name_, start_us_, dur_us);
}

}  // namespace lbist::obs
