#include "obs/obs.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

namespace lbist::obs {

namespace detail {
std::atomic<bool> g_metrics_enabled{false};
std::atomic<bool> g_trace_enabled{false};
std::atomic<bool> g_series_enabled{false};
std::atomic<bool> g_events_enabled{false};
}  // namespace detail

namespace {

/// One buffered trace event (a completed span on one thread's track).
struct TraceEvent {
  std::string name;
  double ts_us = 0.0;
  double dur_us = 0.0;
};

/// Per-name timing accumulator inside one shard.
struct Hist {
  uint64_t count = 0;
  double total = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = 0.0;
};

/// One thread's private slice of every instrument. Owned by the global
/// registry (so totals survive thread exit — ThreadPool workers die
/// with their pool, snapshots happen later) and written only by its
/// thread; snapshots/resets must run at quiescent points, which is
/// where every caller in the tree takes them.
struct Shard {
  std::vector<uint64_t> counts;  // by counter id
  std::vector<Hist> timers;      // by timer id
  std::vector<TraceEvent> events;
  uint32_t tid = 0;  // stable per-thread track ordinal (1-based)
  std::string thread_name;
};

/// One buffered time-series sample (deltas keyed by counter id; the
/// name resolution happens at snapshot time).
struct RawSample {
  int64_t work = 0;
  double ts_us = -1.0;
  std::vector<std::pair<uint32_t, uint64_t>> deltas;
};

/// One series point's ring buffer plus the merged totals at its last
/// sample (the delta baseline).
struct SeriesPoint {
  std::vector<RawSample> ring;  // circular once full
  size_t head = 0;              // index of the oldest sample
  uint64_t dropped = 0;
  std::vector<uint64_t> last_totals;  // by counter id
};

/// Ring capacity per series point: enough for a full campaign's rate
/// curve while bounding a committed BENCH_*.json's series section.
constexpr size_t kSeriesCapacity = 256;

/// Live balance + high-water of one gauge. Plain fields: gauge traffic
/// is allocation-frequency, so every access takes the registry mutex.
struct GaugeState {
  int64_t current = 0;
  int64_t peak = 0;
};

/// One committed event-log line with its ordering key.
struct EventRec {
  uint64_t epoch = 0;
  bool shared = false;  // committed from a parallel context
  std::string line;
};

/// Process-wide instrument state: interned names and the shard list.
/// All members mutex-guarded; the hot path touches it only on first
/// use per thread / per name.
struct Registry {
  std::mutex mutex;
  std::unordered_map<std::string, uint32_t> counter_ids;
  std::vector<std::string> counter_names;
  std::unordered_map<std::string, uint32_t> timer_ids;
  std::vector<std::string> timer_names;
  std::unordered_map<std::string, uint32_t> series_ids;
  std::vector<std::string> series_names;
  std::vector<SeriesPoint> series_points;
  std::unordered_map<std::string, uint32_t> gauge_ids;
  std::vector<std::string> gauge_names;
  std::vector<GaugeState> gauges;
  std::vector<EventRec> events;
  std::vector<std::unique_ptr<Shard>> shards;
  uint32_t next_tid = 1;
  std::thread::id series_owner;

  static Registry& instance() {
    static Registry r;
    return r;
  }
};

/// Serial event commits advance this; shared commits read it. Atomic so
/// parallel-context commits never need the registry mutex to stamp.
std::atomic<uint64_t> g_event_epoch{0};
std::atomic<bool> g_event_wall{false};

thread_local Shard* tls_shard = nullptr;

Shard& myShard() {
  if (tls_shard == nullptr) {
    Registry& reg = Registry::instance();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.shards.push_back(std::make_unique<Shard>());
    reg.shards.back()->tid = reg.next_tid++;
    tls_shard = reg.shards.back().get();
  }
  return *tls_shard;
}

uint32_t internName(std::unordered_map<std::string, uint32_t>& ids,
                    std::vector<std::string>& names, std::string_view name) {
  std::string key(name);
  const auto it = ids.find(key);
  if (it != ids.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(names.size());
  names.push_back(key);
  ids.emplace(std::move(key), id);
  return id;
}

std::chrono::steady_clock::time_point traceEpoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

/// Emits `s` with JSON string escaping (span/thread names are
/// code-controlled, but a stray quote must not corrupt the file).
void writeEscaped(std::FILE* f, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      std::fputc('\\', f);
      std::fputc(c, f);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      std::fprintf(f, "\\u%04x", c);
    } else {
      std::fputc(c, f);
    }
  }
}

/// String-building twin of writeEscaped for the event-line renderer.
void appendEscaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
}

/// Shared open/write/close path for every path-based writer: one place
/// for the fopen failure contract (return false, write nothing).
bool withFile(const std::string& path,
              const std::function<void(std::FILE*)>& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  body(f);
  std::fclose(f);
  return true;
}

/// Merged counter totals by id, summed over shards. Caller holds the
/// registry mutex.
std::vector<uint64_t> mergedTotalsLocked(const Registry& reg) {
  std::vector<uint64_t> totals(reg.counter_names.size(), 0);
  for (const auto& shard : reg.shards) {
    for (size_t i = 0; i < shard->counts.size(); ++i) {
      totals[i] += shard->counts[i];
    }
  }
  return totals;
}

/// The ring contents of one series point, oldest first. Caller holds
/// the registry mutex.
std::vector<const RawSample*> orderedSamplesLocked(const SeriesPoint& p) {
  std::vector<const RawSample*> out;
  out.reserve(p.ring.size());
  for (size_t i = 0; i < p.ring.size(); ++i) {
    out.push_back(&p.ring[(p.head + i) % p.ring.size()]);
  }
  return out;
}

}  // namespace

void setMetricsEnabled(bool enabled) {
  detail::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

void setTraceEnabled(bool enabled) {
  // Pin the epoch before the first span so timestamps are non-negative.
  if (enabled) traceEpoch();
  detail::g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

void setSeriesEnabled(bool enabled) {
  if (enabled) {
    Registry& reg = Registry::instance();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.series_owner = std::this_thread::get_id();
  }
  detail::g_series_enabled.store(enabled, std::memory_order_relaxed);
}

void setEventsEnabled(bool enabled) {
  detail::g_events_enabled.store(enabled, std::memory_order_relaxed);
}

void setEventWallClock(bool enabled) {
  if (enabled) traceEpoch();
  g_event_wall.store(enabled, std::memory_order_relaxed);
}

uint32_t counterId(std::string_view name) {
  Registry& reg = Registry::instance();
  std::lock_guard<std::mutex> lock(reg.mutex);
  return internName(reg.counter_ids, reg.counter_names, name);
}

uint32_t timerId(std::string_view name) {
  Registry& reg = Registry::instance();
  std::lock_guard<std::mutex> lock(reg.mutex);
  return internName(reg.timer_ids, reg.timer_names, name);
}

uint32_t seriesPointId(std::string_view name) {
  Registry& reg = Registry::instance();
  std::lock_guard<std::mutex> lock(reg.mutex);
  const uint32_t id = internName(reg.series_ids, reg.series_names, name);
  if (reg.series_points.size() <= id) reg.series_points.resize(id + 1);
  return id;
}

uint32_t gaugeId(std::string_view name) {
  Registry& reg = Registry::instance();
  std::lock_guard<std::mutex> lock(reg.mutex);
  const uint32_t id = internName(reg.gauge_ids, reg.gauge_names, name);
  if (reg.gauges.size() <= id) reg.gauges.resize(id + 1);
  return id;
}

void addCount(uint32_t id, uint64_t delta) {
  Shard& s = myShard();
  if (s.counts.size() <= id) s.counts.resize(id + 1, 0);
  s.counts[id] += delta;
}

void addTiming(uint32_t id, double seconds) {
  Shard& s = myShard();
  if (s.timers.size() <= id) s.timers.resize(id + 1);
  Hist& h = s.timers[id];
  ++h.count;
  h.total += seconds;
  h.min = std::min(h.min, seconds);
  h.max = std::max(h.max, seconds);
}

void addSpan(std::string_view name, double ts_us, double dur_us) {
  myShard().events.push_back(
      TraceEvent{std::string(name), ts_us, dur_us});
}

void seriesSample(uint32_t id, int64_t work) {
  Registry& reg = Registry::instance();
  std::lock_guard<std::mutex> lock(reg.mutex);
  // Owner-thread gate: only the thread that enabled sampling sits at
  // quiescent points. A nested sample from a pool worker (a campaign
  // job running fault sim, say) silently no-ops — its shards are live.
  if (std::this_thread::get_id() != reg.series_owner) return;
  if (reg.series_points.size() <= id) reg.series_points.resize(id + 1);
  SeriesPoint& p = reg.series_points[id];

  const std::vector<uint64_t> totals = mergedTotalsLocked(reg);
  if (p.last_totals.size() < totals.size()) {
    p.last_totals.resize(totals.size(), 0);
  }
  RawSample sample;
  sample.work = work;
  if (traceEnabled()) sample.ts_us = nowTraceMicros();
  for (size_t i = 0; i < totals.size(); ++i) {
    const uint64_t delta = totals[i] - p.last_totals[i];
    if (delta != 0) {
      sample.deltas.emplace_back(static_cast<uint32_t>(i), delta);
    }
    p.last_totals[i] = totals[i];
  }
  if (p.ring.size() < kSeriesCapacity) {
    p.ring.push_back(std::move(sample));
  } else {
    p.ring[p.head] = std::move(sample);
    p.head = (p.head + 1) % p.ring.size();
    ++p.dropped;
  }
}

void gaugeAdd(uint32_t id, int64_t bytes) {
  Registry& reg = Registry::instance();
  std::lock_guard<std::mutex> lock(reg.mutex);
  if (reg.gauges.size() <= id) reg.gauges.resize(id + 1);
  GaugeState& g = reg.gauges[id];
  g.current += bytes;
  g.peak = std::max(g.peak, g.current);
}

void gaugeSub(uint32_t id, int64_t bytes) {
  Registry& reg = Registry::instance();
  std::lock_guard<std::mutex> lock(reg.mutex);
  if (reg.gauges.size() <= id) reg.gauges.resize(id + 1);
  reg.gauges[id].current -= bytes;
}

void setThreadName(std::string_view name) {
  myShard().thread_name.assign(name);
}

double nowTraceMicros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - traceEpoch())
      .count();
}

std::vector<CounterValue> counterSnapshot() {
  Registry& reg = Registry::instance();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<CounterValue> out(reg.counter_names.size());
  for (size_t i = 0; i < out.size(); ++i) out[i].name = reg.counter_names[i];
  const std::vector<uint64_t> totals = mergedTotalsLocked(reg);
  for (size_t i = 0; i < out.size(); ++i) out[i].value = totals[i];
  std::sort(out.begin(), out.end(),
            [](const CounterValue& a, const CounterValue& b) {
              return a.name < b.name;
            });
  return out;
}

std::vector<TimerValue> timerSnapshot() {
  Registry& reg = Registry::instance();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<TimerValue> out(reg.timer_names.size());
  for (size_t i = 0; i < out.size(); ++i) out[i].name = reg.timer_names[i];
  for (const auto& shard : reg.shards) {
    for (size_t i = 0; i < shard->timers.size(); ++i) {
      const Hist& h = shard->timers[i];
      if (h.count == 0) continue;
      TimerValue& t = out[i];
      t.total_seconds += h.total;
      t.min_seconds = t.count == 0 ? h.min : std::min(t.min_seconds, h.min);
      t.max_seconds = std::max(t.max_seconds, h.max);
      t.count += h.count;
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TimerValue& a, const TimerValue& b) {
              return a.name < b.name;
            });
  return out;
}

uint64_t counterValue(std::string_view name) {
  for (const CounterValue& c : counterSnapshot()) {
    if (c.name == name) return c.value;
  }
  return 0;
}

std::vector<SeriesValue> seriesSnapshot() {
  Registry& reg = Registry::instance();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<SeriesValue> out;
  out.reserve(reg.series_names.size());
  for (size_t s = 0; s < reg.series_names.size(); ++s) {
    SeriesValue sv;
    sv.name = reg.series_names[s];
    if (s < reg.series_points.size()) {
      const SeriesPoint& p = reg.series_points[s];
      sv.dropped = p.dropped;
      for (const RawSample* raw : orderedSamplesLocked(p)) {
        SeriesSample sample;
        sample.work = raw->work;
        sample.ts_us = raw->ts_us;
        for (const auto& [cid, delta] : raw->deltas) {
          sample.deltas.emplace_back(reg.counter_names[cid], delta);
        }
        std::sort(sample.deltas.begin(), sample.deltas.end());
        sv.samples.push_back(std::move(sample));
      }
    }
    out.push_back(std::move(sv));
  }
  std::sort(out.begin(), out.end(),
            [](const SeriesValue& a, const SeriesValue& b) {
              return a.name < b.name;
            });
  return out;
}

std::vector<GaugeValue> gaugeSnapshot() {
  Registry& reg = Registry::instance();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<GaugeValue> out;
  out.reserve(reg.gauge_names.size());
  for (size_t i = 0; i < reg.gauge_names.size(); ++i) {
    GaugeValue gv;
    gv.name = reg.gauge_names[i];
    if (i < reg.gauges.size()) {
      gv.current = reg.gauges[i].current;
      gv.peak = reg.gauges[i].peak;
    }
    out.push_back(std::move(gv));
  }
  std::sort(out.begin(), out.end(),
            [](const GaugeValue& a, const GaugeValue& b) {
              return a.name < b.name;
            });
  return out;
}

GaugeValue gaugeValue(std::string_view name) {
  for (const GaugeValue& g : gaugeSnapshot()) {
    if (g.name == name) return g;
  }
  GaugeValue empty;
  empty.name.assign(name);
  return empty;
}

std::vector<std::string> eventLines() {
  Registry& reg = Registry::instance();
  std::vector<EventRec> recs;
  {
    std::lock_guard<std::mutex> lock(reg.mutex);
    recs = reg.events;
  }
  // Canonical order: epoch, serial line first (it *opened* the epoch),
  // then shared lines sorted by content — identical content from
  // racing threads lands identically, which is the whole determinism
  // argument for commitShared().
  std::stable_sort(recs.begin(), recs.end(),
                   [](const EventRec& a, const EventRec& b) {
                     if (a.epoch != b.epoch) return a.epoch < b.epoch;
                     if (a.shared != b.shared) return !a.shared;
                     return a.line < b.line;
                   });
  std::vector<std::string> out;
  out.reserve(recs.size());
  for (EventRec& r : recs) out.push_back(std::move(r.line));
  return out;
}

void resetAll() {
  Registry& reg = Registry::instance();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& shard : reg.shards) {
    std::fill(shard->counts.begin(), shard->counts.end(), 0);
    std::fill(shard->timers.begin(), shard->timers.end(), Hist{});
    shard->events.clear();
  }
  for (SeriesPoint& p : reg.series_points) {
    p.ring.clear();
    p.head = 0;
    p.dropped = 0;
    std::fill(p.last_totals.begin(), p.last_totals.end(), 0);
  }
  // Live charges stay balanced (RAII releases must not go negative);
  // only the high-water restarts from the current balance.
  for (GaugeState& g : reg.gauges) g.peak = g.current;
  reg.events.clear();
  g_event_epoch.store(0, std::memory_order_relaxed);
}

void writeTraceJson(std::FILE* f) {
  Registry& reg = Registry::instance();
  std::lock_guard<std::mutex> lock(reg.mutex);

  std::fprintf(f,
               "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n"
               "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": 1, "
               "\"args\": {\"name\": \"lbist\"}}");

  for (const auto& shard : reg.shards) {
    if (shard->events.empty() && shard->thread_name.empty()) continue;
    std::fprintf(f,
                 ",\n{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 1, "
                 "\"tid\": %u, \"args\": {\"name\": \"",
                 shard->tid);
    writeEscaped(f, shard->thread_name.empty()
                        ? "thread-" + std::to_string(shard->tid)
                        : shard->thread_name);
    std::fprintf(f, "\"}}");

    // RAII spans complete in reverse-begin order within a nest, so the
    // buffer is not ts-sorted; the viewer and check_trace.py both want
    // begin-ascending per track. stable_sort keeps equal-ts parents
    // before their zero-length children only if dur ties break longer
    // first, so sort on (ts, -dur).
    std::vector<const TraceEvent*> evs;
    evs.reserve(shard->events.size());
    for (const TraceEvent& e : shard->events) evs.push_back(&e);
    std::stable_sort(evs.begin(), evs.end(),
                     [](const TraceEvent* a, const TraceEvent* b) {
                       if (a->ts_us != b->ts_us) return a->ts_us < b->ts_us;
                       return a->dur_us > b->dur_us;
                     });
    for (const TraceEvent* e : evs) {
      std::fprintf(f,
                   ",\n{\"ph\": \"X\", \"name\": \"");
      writeEscaped(f, e->name);
      std::fprintf(f,
                   "\", \"cat\": \"lbist\", \"pid\": 1, \"tid\": %u, "
                   "\"ts\": %.3f, \"dur\": %.3f}",
                   shard->tid, e->ts_us, e->dur_us);
    }
  }

  // Series samples taken while tracing render as "C" counter events —
  // one cumulative-total track per <point>/<counter> beside the span
  // tracks. Samples taken with tracing off carry no timestamp and are
  // skipped (they still live in the JSON "series" section).
  for (size_t s = 0; s < reg.series_names.size() &&
                     s < reg.series_points.size();
       ++s) {
    const SeriesPoint& p = reg.series_points[s];
    std::vector<uint64_t> running(reg.counter_names.size(), 0);
    for (const RawSample* raw : orderedSamplesLocked(p)) {
      for (const auto& [cid, delta] : raw->deltas) running[cid] += delta;
      if (raw->ts_us < 0.0) continue;
      for (const auto& [cid, delta] : raw->deltas) {
        std::fprintf(f, ",\n{\"ph\": \"C\", \"name\": \"");
        writeEscaped(f, reg.series_names[s] + "/" + reg.counter_names[cid]);
        std::fprintf(f,
                     "\", \"pid\": 1, \"ts\": %.3f, "
                     "\"args\": {\"value\": %llu}}",
                     raw->ts_us,
                     static_cast<unsigned long long>(running[cid]));
      }
    }
  }
  std::fprintf(f, "\n]}\n");
}

bool writeTraceJson(const std::string& path) {
  return withFile(path, [](std::FILE* f) { writeTraceJson(f); });
}

void writeCountersJson(std::FILE* f, const char* indent) {
  const std::vector<CounterValue> counters = counterSnapshot();
  std::fprintf(f, "%s\"counters\": {", indent);
  for (size_t i = 0; i < counters.size(); ++i) {
    std::fprintf(f, "%s\n%s  \"", i == 0 ? "" : ",", indent);
    writeEscaped(f, counters[i].name);
    std::fprintf(f, "\": %llu",
                 static_cast<unsigned long long>(counters[i].value));
  }
  std::fprintf(f, "\n%s}", indent);
}

bool writeCountersJson(const std::string& path) {
  return withFile(path, [](std::FILE* f) {
    std::fprintf(f, "{\n");
    writeCountersJson(f, "  ");
    std::fprintf(f, "\n}\n");
  });
}

void writeSeriesJson(std::FILE* f, const char* indent) {
  const std::vector<SeriesValue> series = seriesSnapshot();
  std::fprintf(f, "%s\"series\": {", indent);
  bool first_point = true;
  for (const SeriesValue& sv : series) {
    if (sv.samples.empty()) continue;
    std::fprintf(f, "%s\n%s  \"", first_point ? "" : ",", indent);
    first_point = false;
    writeEscaped(f, sv.name);
    std::fprintf(f, "\": {\n%s    \"dropped\": %llu,\n%s    \"work\": [",
                 indent, static_cast<unsigned long long>(sv.dropped),
                 indent);
    for (size_t i = 0; i < sv.samples.size(); ++i) {
      std::fprintf(f, "%s%lld", i == 0 ? "" : ", ",
                   static_cast<long long>(sv.samples[i].work));
    }
    std::fprintf(f, "],\n%s    \"counters\": {", indent);
    // Union of every counter that moved in any sample; a sample where
    // a counter did not move contributes an explicit 0 so the arrays
    // stay parallel to "work".
    std::vector<std::string> names;
    for (const SeriesSample& s : sv.samples) {
      for (const auto& [name, delta] : s.deltas) names.push_back(name);
    }
    std::sort(names.begin(), names.end());
    names.erase(std::unique(names.begin(), names.end()), names.end());
    for (size_t n = 0; n < names.size(); ++n) {
      std::fprintf(f, "%s\n%s      \"", n == 0 ? "" : ",", indent);
      writeEscaped(f, names[n]);
      std::fprintf(f, "\": [");
      for (size_t i = 0; i < sv.samples.size(); ++i) {
        uint64_t delta = 0;
        for (const auto& [name, d] : sv.samples[i].deltas) {
          if (name == names[n]) {
            delta = d;
            break;
          }
        }
        std::fprintf(f, "%s%llu", i == 0 ? "" : ", ",
                     static_cast<unsigned long long>(delta));
      }
      std::fprintf(f, "]");
    }
    std::fprintf(f, "\n%s    }\n%s  }", indent, indent);
  }
  std::fprintf(f, "\n%s}", indent);
}

bool writeSeriesJson(const std::string& path) {
  return withFile(path, [](std::FILE* f) {
    std::fprintf(f, "{\n");
    writeSeriesJson(f, "  ");
    std::fprintf(f, "\n}\n");
  });
}

void writeGaugesJson(std::FILE* f, const char* indent) {
  const std::vector<GaugeValue> gauges = gaugeSnapshot();
  std::fprintf(f, "%s\"mem_peak\": {", indent);
  for (size_t i = 0; i < gauges.size(); ++i) {
    std::fprintf(f, "%s\n%s  \"", i == 0 ? "" : ",", indent);
    writeEscaped(f, gauges[i].name);
    std::fprintf(f, "\": %lld", static_cast<long long>(gauges[i].peak));
  }
  std::fprintf(f, "\n%s}", indent);
}

bool writeGaugesJson(const std::string& path) {
  return withFile(path, [](std::FILE* f) {
    std::fprintf(f, "{\n");
    writeGaugesJson(f, "  ");
    std::fprintf(f, "\n}\n");
  });
}

bool writeEventsJsonl(const std::string& path) {
  const std::vector<std::string> lines = eventLines();
  return withFile(path, [&lines](std::FILE* f) {
    for (const std::string& line : lines) {
      std::fputs(line.c_str(), f);
      std::fputc('\n', f);
    }
  });
}

SpanScope::SpanScope(const char* name, uint32_t tid)
    : name_(name),
      timer_id_(tid),
      armed_(metricsEnabled()),
      trace_(traceEnabled()) {
  if (armed_ || trace_) start_us_ = nowTraceMicros();
}

SpanScope::~SpanScope() {
  if (!armed_ && !trace_) return;
  const double end_us = nowTraceMicros();
  const double dur_us = end_us - start_us_;
  if (armed_) addTiming(timer_id_, dur_us * 1e-6);
  if (trace_) addSpan(name_, start_us_, dur_us);
}

Event::Event(const char* kind) {
  body_ = "{\"ev\":\"";
  appendEscaped(body_, kind);
  body_ += '"';
}

Event& Event::field(const char* key, std::string_view value) {
  body_ += ",\"";
  appendEscaped(body_, key);
  body_ += "\":\"";
  appendEscaped(body_, value);
  body_ += '"';
  return *this;
}

Event& Event::field(const char* key, const char* value) {
  return field(key, std::string_view(value));
}

Event& Event::field(const char* key, int64_t value) {
  body_ += ",\"";
  appendEscaped(body_, key);
  body_ += "\":";
  body_ += std::to_string(value);
  return *this;
}

Event& Event::field(const char* key, uint64_t value) {
  body_ += ",\"";
  appendEscaped(body_, key);
  body_ += "\":";
  body_ += std::to_string(value);
  return *this;
}

Event& Event::field(const char* key, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  body_ += ",\"";
  appendEscaped(body_, key);
  body_ += "\":";
  body_ += buf;
  return *this;
}

Event& Event::field(const char* key, bool value) {
  body_ += ",\"";
  appendEscaped(body_, key);
  body_ += "\":";
  body_ += value ? "true" : "false";
  return *this;
}

namespace {

void commitEvent(std::string body, bool shared) {
  const uint64_t epoch =
      shared ? g_event_epoch.load(std::memory_order_acquire)
             : g_event_epoch.fetch_add(1, std::memory_order_acq_rel) + 1;
  // Insert the epoch (and optional wall clock) right after the kind so
  // every line shares the field order {"ev","ep"[,"ts_us"],...}.
  std::string line;
  const size_t kind_end = body.find('"', body.find(':') + 2) + 1;
  line.reserve(body.size() + 32);
  line.append(body, 0, kind_end);
  line += ",\"ep\":";
  line += std::to_string(epoch);
  if (g_event_wall.load(std::memory_order_relaxed)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", nowTraceMicros());
    line += ",\"ts_us\":";
    line += buf;
  }
  line.append(body, kind_end, std::string::npos);
  line += '}';

  Registry& reg = Registry::instance();
  std::lock_guard<std::mutex> lock(reg.mutex);
  reg.events.push_back(EventRec{epoch, shared, std::move(line)});
}

}  // namespace

void Event::commit() {
  if (committed_ || !eventsEnabled()) return;
  committed_ = true;
  commitEvent(std::move(body_), /*shared=*/false);
}

void Event::commitShared() {
  if (committed_ || !eventsEnabled()) return;
  committed_ = true;
  commitEvent(std::move(body_), /*shared=*/true);
}

GaugeCharge::GaugeCharge(uint32_t id, int64_t bytes) : id_(id) {
  if (metricsEnabled() && bytes > 0) {
    gaugeAdd(id_, bytes);
    charged_ = bytes;
  }
}

GaugeCharge::~GaugeCharge() { release(); }

GaugeCharge::GaugeCharge(const GaugeCharge& other) : id_(other.id_) {
  // A copy owns a copy of the allocation, so it re-charges the same
  // amount — regardless of the current enabled flag, to keep the
  // releases balanced against the charges.
  if (other.charged_ > 0) {
    gaugeAdd(id_, other.charged_);
    charged_ = other.charged_;
  }
}

GaugeCharge& GaugeCharge::operator=(const GaugeCharge& other) {
  if (this == &other) return *this;
  release();
  id_ = other.id_;
  if (other.charged_ > 0) {
    gaugeAdd(id_, other.charged_);
    charged_ = other.charged_;
  }
  return *this;
}

GaugeCharge::GaugeCharge(GaugeCharge&& other) noexcept
    : id_(other.id_), charged_(other.charged_) {
  other.charged_ = 0;
}

GaugeCharge& GaugeCharge::operator=(GaugeCharge&& other) noexcept {
  if (this == &other) return *this;
  release();
  id_ = other.id_;
  charged_ = other.charged_;
  other.charged_ = 0;
  return *this;
}

void GaugeCharge::release() {
  if (charged_ != 0) {
    gaugeSub(id_, charged_);
    charged_ = 0;
  }
}

}  // namespace lbist::obs
