// Observability layer: deterministic counters, histogram timers, scoped
// span tracing, work-anchored time series, a structured event log, and
// memory gauges for every engine in the stack.
//
// Six instruments, all disabled by default and all result-neutral
// (ARCHITECTURE.md contract 5 — enabling any of them never changes a
// detection mask, pattern set, or checkpoint byte, only what is
// *recorded about* the run):
//
//  * Counters (OBS_COUNT): named monotonic uint64 totals, sharded
//    per OS thread so hot loops never contend on an atomic. A snapshot
//    merges the shards by summation — commutative, so the merged value
//    is independent of thread scheduling — and reports counters sorted
//    by name, giving a deterministic counter section for any
//    deterministic workload regardless of worker count or interleaving
//    (the fault-list-order analogue for metrics).
//  * Histogram timers (OBS_SPAN's metrics half): per-name call count,
//    total/min/max wall seconds. Durations are measurement, not
//    behavior — like TopUpResult::atpg_seconds they are exempt from
//    bit-identity, but the call *counts* merge deterministically.
//  * Spans (OBS_SPAN's trace half): scoped begin/end pairs recorded
//    per thread and written as Chrome trace-event JSON ("X" complete
//    events, one track per participating thread) that Perfetto /
//    chrome://tracing load directly (writeTraceJson).
//  * Time series (OBS_SAMPLE): work-anchored rate curves. A sample
//    point sits at a serial merge (per pattern block, per top-up
//    round, per campaign group) and records the delta of every merged
//    counter since the point's previous sample into a ring buffer,
//    keyed by a *work* index (patterns simulated, groups merged) —
//    never by wall clock, so the curves are deterministic and
//    byte-diffable across reruns and thread counts. Samples record
//    only on the owner thread (the thread that called
//    setSeriesEnabled), which is where every serial merge in the tree
//    runs; a sample reached from a worker thread is a silent no-op,
//    because counter shards are only quiescent under the owner.
//    Exported as a "series" section in BENCH_*.json and, when tracing
//    is on, as Chrome "C" counter events beside the span tracks.
//  * Event log (obs::Event): structured JSONL with a stable schema —
//    run headers, phase begin/end, robust injections/recoveries, SAT
//    escalations and redundancy proofs, per-core campaign results,
//    checkpoint rewrites. Deterministic content mode is the default:
//    events carry work indices, not timestamps, and the writer orders
//    them by (epoch, content) so the log is byte-identical across
//    reruns and thread counts (setEventWallClock trades that away for
//    timestamps). Serial-context events advance the global epoch;
//    parallel-context events share the current epoch and sort by
//    their rendered content within it — emit value-identical lines
//    from racing threads and the log stays canonical.
//  * Gauges (OBS_GAUGE_ADD/SUB): signed byte accounting with
//    high-water tracking for the big owners (compiled SoA tables,
//    lane value arrays, SAT clause arenas, response dictionaries,
//    checkpoint WAL buffers). current balances exactly against the
//    charges; peak is the high-water mark since the last resetAll.
//    Peaks charged from serial phases are deterministic; peaks from
//    allocations that overlap across worker threads depend on
//    scheduling (bounded above by the sum of the overlapping charges).
//
// Cost model: every macro compiles to a single relaxed boolean test
// when the corresponding instrument is off, and to nothing at all when
// LBIST_OBS_OFF is defined (the enabled() predicates become constant
// false, so even hand-guarded `if (obs::eventsEnabled())` blocks fold
// out). Instrumented code must not change any control flow, RNG
// consumption, or iteration order based on obs state — the
// differential tests in tests/test_obs.cpp run whole campaigns with
// everything on vs off and require bit-identical results.
//
// Counter naming convention (enforced by ARCHITECTURE.md): lowercase
// dotted paths, "<subsystem>.<noun>[_<verb>]", subsystem matching the
// src/ directory that increments it — e.g. fsim.events_popped,
// atpg.backtracks, prpg.block_loads, diag.dict_rows, soc.cores_run.
// Series points and gauges follow the same convention (fsim.block,
// sim.lane_bytes). Totals only; derived rates (events/pattern,
// backtracks/target) are computed by readers such as
// scripts/bench_delta.py.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lbist::obs {

namespace detail {
// Backing flags for the inline enabled() reads. Relaxed loads: the
// instruments tolerate a stale view for a few instructions; flips at
// quiescent points (where all snapshots happen) are always seen.
extern std::atomic<bool> g_metrics_enabled;
extern std::atomic<bool> g_trace_enabled;
extern std::atomic<bool> g_series_enabled;
extern std::atomic<bool> g_events_enabled;
}  // namespace detail

/// Flat snapshot row of one merged counter.
struct CounterValue {
  std::string name;
  uint64_t value = 0;
};

/// Flat snapshot row of one merged histogram timer. Counts merge
/// deterministically; the seconds fields carry wall time and are exempt
/// from bit-identity (measurement, not behavior).
struct TimerValue {
  std::string name;
  uint64_t count = 0;
  double total_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
};

/// One recorded time-series sample: the merged-counter deltas since the
/// point's previous sample, anchored at a work index. `ts_us` is filled
/// only when tracing was on at sample time (it feeds the "C" counter
/// events, never the deterministic JSON section).
struct SeriesSample {
  int64_t work = 0;
  double ts_us = -1.0;
  /// (counter name, delta) pairs sorted by name; zero deltas omitted.
  std::vector<std::pair<std::string, uint64_t>> deltas;
};

/// One series point's ring-buffer contents, oldest sample first.
struct SeriesValue {
  std::string name;
  std::vector<SeriesSample> samples;
  uint64_t dropped = 0;  // samples evicted by the ring buffer
};

/// Flat snapshot row of one gauge: live balance plus high-water mark.
struct GaugeValue {
  std::string name;
  int64_t current = 0;
  int64_t peak = 0;
};

/// Enables/disables the counter + histogram-timer instruments. Off by
/// default; flipping it mid-run is allowed (shards already written keep
/// their totals).
void setMetricsEnabled(bool enabled);
/// Enables/disables span trace recording. Off by default. Events are
/// buffered in memory per thread until writeTraceJson / resetAll.
void setTraceEnabled(bool enabled);
/// Enables/disables time-series sampling and adopts the calling thread
/// as the series owner: only OBS_SAMPLE sites executed on this thread
/// record (serial merges run there; worker-thread samples no-op because
/// the counter shards they would snapshot are not quiescent).
void setSeriesEnabled(bool enabled);
/// Enables/disables the structured event log. Off by default.
void setEventsEnabled(bool enabled);
/// Opts event lines into a wall-clock "ts_us" field. Default off: the
/// deterministic content mode is what makes logs byte-diffable across
/// reruns and thread counts, and timestamps break that on purpose.
void setEventWallClock(bool enabled);

#ifndef LBIST_OBS_OFF
/// True when OBS_COUNT / OBS_GAUGE_* / the metrics half of OBS_SPAN
/// record. Inline: this is the single branch every disabled
/// instrumentation site pays.
[[nodiscard]] inline bool metricsEnabled() {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}
/// True when the trace half of OBS_SPAN records.
[[nodiscard]] inline bool traceEnabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}
/// True when OBS_SAMPLE sites consider recording (the owner-thread
/// check happens inside seriesSample).
[[nodiscard]] inline bool seriesEnabled() {
  return detail::g_series_enabled.load(std::memory_order_relaxed);
}
/// True when obs::Event commits record. Guard event construction with
/// this so disabled sites pay one branch and no string work.
[[nodiscard]] inline bool eventsEnabled() {
  return detail::g_events_enabled.load(std::memory_order_relaxed);
}
#else   // LBIST_OBS_OFF
/// Constant false under LBIST_OBS_OFF: hand-guarded instrumentation
/// blocks (`if (obs::metricsEnabled()) {...}`) dead-code out entirely.
[[nodiscard]] constexpr bool metricsEnabled() { return false; }
/// Constant false under LBIST_OBS_OFF (see metricsEnabled).
[[nodiscard]] constexpr bool traceEnabled() { return false; }
/// Constant false under LBIST_OBS_OFF (see metricsEnabled).
[[nodiscard]] constexpr bool seriesEnabled() { return false; }
/// Constant false under LBIST_OBS_OFF (see metricsEnabled).
[[nodiscard]] constexpr bool eventsEnabled() { return false; }
#endif  // LBIST_OBS_OFF

/// Interns `name` and returns its stable counter id (process lifetime).
/// Cold path — the macros cache the id in a function-local static.
[[nodiscard]] uint32_t counterId(std::string_view name);
/// Interns `name` and returns its stable timer id (process lifetime).
[[nodiscard]] uint32_t timerId(std::string_view name);
/// Interns `name` and returns its stable series-point id.
[[nodiscard]] uint32_t seriesPointId(std::string_view name);
/// Interns `name` and returns its stable gauge id.
[[nodiscard]] uint32_t gaugeId(std::string_view name);

/// Adds `delta` to counter `id` on this thread's shard. Callers go
/// through OBS_COUNT, which guards with metricsEnabled().
void addCount(uint32_t id, uint64_t delta);
/// Records one `seconds` observation for timer `id` on this thread's
/// shard. Callers go through OBS_SPAN.
void addTiming(uint32_t id, double seconds);
/// Appends a completed span (begin timestamp + duration, microseconds
/// since the trace epoch) to this thread's trace track.
void addSpan(std::string_view name, double ts_us, double dur_us);
/// Records one time-series sample for point `id` at work index `work`:
/// the merged-counter deltas since the point's previous sample. No-op
/// off the owner thread (see setSeriesEnabled). Callers go through
/// OBS_SAMPLE; the call must sit at a quiescent point (no worker
/// mid-block), which every serial merge satisfies.
void seriesSample(uint32_t id, int64_t work);
/// Charges `bytes` to gauge `id` (raising the high-water mark as
/// needed). Callers go through OBS_GAUGE_ADD.
void gaugeAdd(uint32_t id, int64_t bytes);
/// Releases `bytes` from gauge `id`. Callers go through OBS_GAUGE_SUB.
void gaugeSub(uint32_t id, int64_t bytes);

/// Labels this thread's trace track (e.g. "fsim-worker-2"); shown as
/// the track name in Perfetto. Safe to call with tracing off. Last
/// call wins — campaign jobs re-label pool workers with the core
/// under test ("core-<name>").
void setThreadName(std::string_view name);

/// Microseconds since the process trace epoch — the timebase addSpan
/// expects.
[[nodiscard]] double nowTraceMicros();

/// Deterministic merged counter snapshot: per-thread shards summed,
/// rows sorted by name, zero-valued counters included once interned.
[[nodiscard]] std::vector<CounterValue> counterSnapshot();
/// Merged timer snapshot, sorted by name (counts deterministic, seconds
/// wall-clock).
[[nodiscard]] std::vector<TimerValue> timerSnapshot();
/// Merged value of one counter by name (0 when never interned).
[[nodiscard]] uint64_t counterValue(std::string_view name);
/// All series points with their buffered samples, sorted by point name.
[[nodiscard]] std::vector<SeriesValue> seriesSnapshot();
/// All gauges (current balance + high-water), sorted by name.
[[nodiscard]] std::vector<GaugeValue> gaugeSnapshot();
/// One gauge by name (zero-valued when never interned).
[[nodiscard]] GaugeValue gaugeValue(std::string_view name);
/// The event log in canonical order — rendered JSONL lines sorted by
/// (epoch, serial-before-shared, content). This is exactly what
/// writeEventsJsonl writes, exposed for tests.
[[nodiscard]] std::vector<std::string> eventLines();

/// Clears every shard's counters, timers, buffered trace events,
/// series samples, and logged events, and resets every gauge's
/// high-water mark to its current balance (live charges stay balanced
/// so RAII releases cannot go negative). Interned names/ids survive
/// (they are process-stable).
void resetAll();

/// Writes all buffered spans as Chrome trace-event JSON ("X" complete
/// events plus thread_name metadata, one tid per participating thread,
/// sorted by begin timestamp within a tid), followed by "C" counter
/// events for every series sample that was taken while tracing — so
/// throughput curves render beside the span tracks in Perfetto or
/// chrome://tracing. Returns false when the file cannot be opened.
/// scripts/check_trace.py validates the invariants this writer
/// guarantees.
bool writeTraceJson(const std::string& path);
/// Stream form of the trace writer (shared by the path overload).
void writeTraceJson(std::FILE* f);

/// Appends a `"counters": {...}` JSON object (no trailing comma) for
/// the current merged snapshot to an open stream — the bench writers
/// embed it in their BENCH_*.json so scripts/bench_delta.py can diff
/// counters next to throughput. `indent` is prepended to every line.
void writeCountersJson(std::FILE* f, const char* indent);
/// Path form: writes a standalone `{"counters": {...}}` document.
/// Returns false when the file cannot be opened.
bool writeCountersJson(const std::string& path);

/// Appends a `"series": {...}` JSON object (no trailing comma): per
/// point, the work-index array plus one delta array per counter that
/// moved in any sample. Deterministic for deterministic workloads —
/// scripts/bench_delta.py diffs the endpoints key by key.
void writeSeriesJson(std::FILE* f, const char* indent);
/// Path form: writes a standalone `{"series": {...}}` document.
bool writeSeriesJson(const std::string& path);

/// Appends a `"mem_peak": {...}` JSON object (no trailing comma): every
/// gauge's high-water byte count since the last resetAll.
void writeGaugesJson(std::FILE* f, const char* indent);
/// Path form: writes a standalone `{"mem_peak": {...}}` document.
bool writeGaugesJson(const std::string& path);

/// Writes the event log as JSONL in canonical (epoch, content) order —
/// byte-identical across reruns and thread counts in deterministic
/// content mode. scripts/check_events.py validates the schema and
/// ordering. Returns false when the file cannot be opened.
bool writeEventsJsonl(const std::string& path);

/// RAII span: records a histogram timing (metrics) and a trace event
/// (tracing) for the enclosed scope. Instantiate via OBS_SPAN. When
/// both instruments are off at construction the destructor is a single
/// branch.
class SpanScope {
 public:
  /// `name` must outlive the scope (the macros pass string literals);
  /// `tid` is the cached timer id for the metrics half.
  SpanScope(const char* name, uint32_t tid);
  ~SpanScope();

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  const char* name_;
  uint32_t timer_id_;
  bool armed_;
  bool trace_;
  double start_us_ = 0.0;
};

/// Builder for one structured event-log line. Guard construction with
/// eventsEnabled() so disabled sites pay one branch:
///
///   if (obs::eventsEnabled()) {
///     obs::Event("core_result")
///         .field("core", name).field("pass", ok).commit();
///   }
///
/// Fields render in call order into a fixed-shape JSON object
/// `{"ev":"<kind>","ep":<epoch>[,"ts_us":<wall>],<fields...>}`.
/// commit() is for serial contexts and advances the global epoch;
/// commitShared() is for parallel contexts — it tags the line with the
/// current epoch, and value-identical lines from racing threads land
/// in a deterministic order because the writer sorts by content within
/// an epoch. Keep wall-clock-dependent or scheduling-dependent values
/// out of commitShared() lines; determinism of the log is only as good
/// as the determinism of the content.
class Event {
 public:
  /// Starts a line of the given kind (see the ARCHITECTURE.md schema
  /// table); the line is dropped unless commit()/commitShared() runs.
  explicit Event(const char* kind);
  /// Appends a JSON-escaped string field.
  Event& field(const char* key, std::string_view value);
  /// Appends a JSON-escaped string field.
  Event& field(const char* key, const char* value);
  /// Appends a signed integer field.
  Event& field(const char* key, int64_t value);
  /// Appends an unsigned integer field.
  Event& field(const char* key, uint64_t value);
  /// Appends a numeric field (%.6g).
  Event& field(const char* key, double value);
  /// Appends a true/false field.
  Event& field(const char* key, bool value);
  /// Serial-context commit: assigns the next epoch.
  void commit();
  /// Parallel-context commit: shares the current epoch.
  void commitShared();

 private:
  std::string body_;
  bool committed_ = false;
};

/// RAII byte charge against a gauge, for class members that own a big
/// allocation: charges `bytes` at construction (when metrics are on),
/// releases exactly what it charged at destruction. Copies re-charge
/// the same amount; moves transfer the charge. The default instance
/// holds nothing.
class GaugeCharge {
 public:
  GaugeCharge() = default;
  /// Charges `bytes` against gauge `id` now (no-op when metrics are
  /// off or bytes <= 0); the destructor releases the same amount.
  GaugeCharge(uint32_t id, int64_t bytes);
  ~GaugeCharge();
  /// Copying re-charges the source's amount (two owners, two charges).
  GaugeCharge(const GaugeCharge& other);
  GaugeCharge& operator=(const GaugeCharge& other);
  /// Moving transfers the charge; the source ends empty.
  GaugeCharge(GaugeCharge&& other) noexcept;
  GaugeCharge& operator=(GaugeCharge&& other) noexcept;

 private:
  void release();

  uint32_t id_ = 0;
  int64_t charged_ = 0;
};

}  // namespace lbist::obs

// The macros below are the only sanctioned instrumentation entry
// points: they keep the disabled cost to one predictable branch and
// cache the name->id interning in a function-local static on the
// enabled path. LBIST_OBS_OFF compiles all of them out entirely.
#ifndef LBIST_OBS_OFF

/// Adds `delta` to the named counter when metrics are enabled.
#define OBS_COUNT(name, delta)                                       \
  do {                                                               \
    if (::lbist::obs::metricsEnabled()) [[unlikely]] {               \
      static const uint32_t obs_count_id_ =                          \
          ::lbist::obs::counterId(name);                             \
      ::lbist::obs::addCount(obs_count_id_,                          \
                             static_cast<uint64_t>(delta));          \
    }                                                                \
  } while (0)

#define OBS_CONCAT_IMPL_(a, b) a##b
#define OBS_CONCAT_(a, b) OBS_CONCAT_IMPL_(a, b)

/// Scoped span: histogram timing + trace event for the rest of the
/// enclosing block. The name is interned once (function-local static);
/// with both instruments off the scope costs its construction branch.
#define OBS_SPAN(name)                                              \
  static const uint32_t OBS_CONCAT_(obs_span_id_, __LINE__) =       \
      ::lbist::obs::timerId(name);                                  \
  ::lbist::obs::SpanScope OBS_CONCAT_(obs_span_, __LINE__)(         \
      name, OBS_CONCAT_(obs_span_id_, __LINE__))

/// Records a time-series sample for the named point at work index
/// `work` when series sampling is enabled. Place only at quiescent
/// serial-merge points (see obs::seriesSample).
#define OBS_SAMPLE(name, work)                                       \
  do {                                                               \
    if (::lbist::obs::seriesEnabled()) [[unlikely]] {                \
      static const uint32_t obs_sample_id_ =                         \
          ::lbist::obs::seriesPointId(name);                         \
      ::lbist::obs::seriesSample(obs_sample_id_,                     \
                                 static_cast<int64_t>(work));        \
    }                                                                \
  } while (0)

/// Charges `bytes` to the named gauge when metrics are enabled.
#define OBS_GAUGE_ADD(name, bytes)                                   \
  do {                                                               \
    if (::lbist::obs::metricsEnabled()) [[unlikely]] {               \
      static const uint32_t obs_gauge_id_ =                          \
          ::lbist::obs::gaugeId(name);                               \
      ::lbist::obs::gaugeAdd(obs_gauge_id_,                          \
                             static_cast<int64_t>(bytes));           \
    }                                                                \
  } while (0)

/// Releases `bytes` from the named gauge when metrics are enabled.
#define OBS_GAUGE_SUB(name, bytes)                                   \
  do {                                                               \
    if (::lbist::obs::metricsEnabled()) [[unlikely]] {               \
      static const uint32_t obs_gauge_id_ =                          \
          ::lbist::obs::gaugeId(name);                               \
      ::lbist::obs::gaugeSub(obs_gauge_id_,                          \
                             static_cast<int64_t>(bytes));           \
    }                                                                \
  } while (0)

#else  // LBIST_OBS_OFF

#define OBS_COUNT(name, delta) ((void)0)
#define OBS_SPAN(name) ((void)0)
#define OBS_SAMPLE(name, work) ((void)0)
#define OBS_GAUGE_ADD(name, bytes) ((void)0)
#define OBS_GAUGE_SUB(name, bytes) ((void)0)

#endif  // LBIST_OBS_OFF
