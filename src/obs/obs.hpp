// Observability layer: deterministic counters, histogram timers, and
// scoped span tracing for every engine in the stack.
//
// Three instruments, all disabled by default and all result-neutral
// (ARCHITECTURE.md contract 5 — enabling any of them never changes a
// detection mask, pattern set, or checkpoint byte, only what is
// *recorded about* the run):
//
//  * Counters (OBS_COUNT): named monotonic uint64 totals, sharded
//    per OS thread so hot loops never contend on an atomic. A snapshot
//    merges the shards by summation — commutative, so the merged value
//    is independent of thread scheduling — and reports counters sorted
//    by name, giving a deterministic counter section for any
//    deterministic workload regardless of worker count or interleaving
//    (the fault-list-order analogue for metrics).
//  * Histogram timers (OBS_SPAN's metrics half): per-name call count,
//    total/min/max wall seconds. Durations are measurement, not
//    behavior — like TopUpResult::atpg_seconds they are exempt from
//    bit-identity, but the call *counts* merge deterministically.
//  * Spans (OBS_SPAN's trace half): scoped begin/end pairs recorded
//    per thread and written as Chrome trace-event JSON ("X" complete
//    events, one track per participating thread) that Perfetto /
//    chrome://tracing load directly (writeTraceJson).
//
// Cost model: every macro compiles to a single relaxed boolean test
// when the corresponding instrument is off, and to nothing at all when
// LBIST_OBS_OFF is defined. Instrumented code must not change any
// control flow, RNG consumption, or iteration order based on obs state
// — the differential tests in tests/test_obs.cpp run whole campaigns
// with everything on vs off and require bit-identical results.
//
// Counter naming convention (enforced by ARCHITECTURE.md): lowercase
// dotted paths, "<subsystem>.<noun>[_<verb>]", subsystem matching the
// src/ directory that increments it — e.g. fsim.events_popped,
// atpg.backtracks, prpg.block_loads, diag.dict_rows, soc.cores_run.
// Totals only; derived rates (events/pattern, backtracks/target) are
// computed by readers such as scripts/bench_delta.py.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace lbist::obs {

namespace detail {
// Backing flags for the inline enabled() reads. Relaxed loads: the
// instruments tolerate a stale view for a few instructions; flips at
// quiescent points (where all snapshots happen) are always seen.
extern std::atomic<bool> g_metrics_enabled;
extern std::atomic<bool> g_trace_enabled;
}  // namespace detail

/// Flat snapshot row of one merged counter.
struct CounterValue {
  std::string name;
  uint64_t value = 0;
};

/// Flat snapshot row of one merged histogram timer. Counts merge
/// deterministically; the seconds fields carry wall time and are exempt
/// from bit-identity (measurement, not behavior).
struct TimerValue {
  std::string name;
  uint64_t count = 0;
  double total_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
};

/// Enables/disables the counter + histogram-timer instruments. Off by
/// default; flipping it mid-run is allowed (shards already written keep
/// their totals).
void setMetricsEnabled(bool enabled);
/// Enables/disables span trace recording. Off by default. Events are
/// buffered in memory per thread until writeTraceJson / resetAll.
void setTraceEnabled(bool enabled);

/// True when OBS_COUNT / the metrics half of OBS_SPAN record. Inline:
/// this is the single branch every disabled instrumentation site pays.
[[nodiscard]] inline bool metricsEnabled() {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}
/// True when the trace half of OBS_SPAN records.
[[nodiscard]] inline bool traceEnabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Interns `name` and returns its stable counter id (process lifetime).
/// Cold path — the macros cache the id in a function-local static.
[[nodiscard]] uint32_t counterId(std::string_view name);
/// Interns `name` and returns its stable timer id (process lifetime).
[[nodiscard]] uint32_t timerId(std::string_view name);

/// Adds `delta` to counter `id` on this thread's shard. Callers go
/// through OBS_COUNT, which guards with metricsEnabled().
void addCount(uint32_t id, uint64_t delta);
/// Records one `seconds` observation for timer `id` on this thread's
/// shard. Callers go through OBS_SPAN.
void addTiming(uint32_t id, double seconds);
/// Appends a completed span (begin timestamp + duration, microseconds
/// since the trace epoch) to this thread's trace track.
void addSpan(std::string_view name, double ts_us, double dur_us);

/// Labels this thread's trace track (e.g. "fsim-worker-2"); shown as
/// the track name in Perfetto. Safe to call with tracing off.
void setThreadName(std::string_view name);

/// Microseconds since the process trace epoch — the timebase addSpan
/// expects.
[[nodiscard]] double nowTraceMicros();

/// Deterministic merged counter snapshot: per-thread shards summed,
/// rows sorted by name, zero-valued counters included once interned.
[[nodiscard]] std::vector<CounterValue> counterSnapshot();
/// Merged timer snapshot, sorted by name (counts deterministic, seconds
/// wall-clock).
[[nodiscard]] std::vector<TimerValue> timerSnapshot();
/// Merged value of one counter by name (0 when never interned).
[[nodiscard]] uint64_t counterValue(std::string_view name);

/// Clears every shard's counters, timers, and buffered trace events.
/// Interned names/ids survive (they are process-stable).
void resetAll();

/// Writes all buffered spans as Chrome trace-event JSON ("X" complete
/// events plus thread_name metadata, one tid per participating thread,
/// sorted by begin timestamp within a tid) loadable in Perfetto or
/// chrome://tracing. Returns false when the file cannot be opened.
/// scripts/check_trace.py validates the invariants this writer
/// guarantees.
bool writeTraceJson(const std::string& path);

/// Appends a `"counters": {...}` JSON object (no trailing comma) for
/// the current merged snapshot to an open stream — the bench writers
/// embed it in their BENCH_*.json so scripts/bench_delta.py can diff
/// counters next to throughput. `indent` is prepended to every line.
void writeCountersJson(std::FILE* f, const char* indent);

/// RAII span: records a histogram timing (metrics) and a trace event
/// (tracing) for the enclosed scope. Instantiate via OBS_SPAN. When
/// both instruments are off at construction the destructor is a single
/// branch.
class SpanScope {
 public:
  /// `name` must outlive the scope (the macros pass string literals);
  /// `tid` is the cached timer id for the metrics half.
  SpanScope(const char* name, uint32_t tid);
  ~SpanScope();

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  const char* name_;
  uint32_t timer_id_;
  bool armed_;
  bool trace_;
  double start_us_ = 0.0;
};

}  // namespace lbist::obs

// The macros below are the only sanctioned instrumentation entry
// points: they keep the disabled cost to one predictable branch and
// cache the name->id interning in a function-local static on the
// enabled path. LBIST_OBS_OFF compiles all of them out entirely.
#ifndef LBIST_OBS_OFF

/// Adds `delta` to the named counter when metrics are enabled.
#define OBS_COUNT(name, delta)                                       \
  do {                                                               \
    if (::lbist::obs::metricsEnabled()) [[unlikely]] {               \
      static const uint32_t obs_count_id_ =                          \
          ::lbist::obs::counterId(name);                             \
      ::lbist::obs::addCount(obs_count_id_,                          \
                             static_cast<uint64_t>(delta));          \
    }                                                                \
  } while (0)

#define OBS_CONCAT_IMPL_(a, b) a##b
#define OBS_CONCAT_(a, b) OBS_CONCAT_IMPL_(a, b)

/// Scoped span: histogram timing + trace event for the rest of the
/// enclosing block. The name is interned once (function-local static);
/// with both instruments off the scope costs its construction branch.
#define OBS_SPAN(name)                                              \
  static const uint32_t OBS_CONCAT_(obs_span_id_, __LINE__) =       \
      ::lbist::obs::timerId(name);                                  \
  ::lbist::obs::SpanScope OBS_CONCAT_(obs_span_, __LINE__)(         \
      name, OBS_CONCAT_(obs_span_id_, __LINE__))

#else  // LBIST_OBS_OFF

#define OBS_COUNT(name, delta) ((void)0)
#define OBS_SPAN(name) ((void)0)

#endif  // LBIST_OBS_OFF
